"""Tests for the rectangular-faulty-block baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.rfb import _local_closure, rfb_blocks, rfb_labelled, rfb_unsafe
from repro.core.labelling import FAULTY, USELESS
from repro.mesh.orientation import Orientation
from repro.mesh.regions import mask_of_cells
from tests.conftest import random_mask


class TestLocalClosure:
    def test_two_dims_rule(self):
        # (2,2) has faulty neighbors on two different dimensions.
        mask = mask_of_cells([(1, 2), (2, 1)], (5, 5))
        closed = _local_closure(mask)
        assert closed[2, 2]

    def test_same_dim_not_enough(self):
        mask = mask_of_cells([(1, 2), (3, 2)], (5, 5))
        closed = _local_closure(mask)
        assert not closed[2, 2]

    def test_cascades(self):
        mask = mask_of_cells([(1, 2), (2, 1), (3, 2), (2, 3)], (6, 6))
        closed = _local_closure(mask)
        assert closed[2, 2]


class TestBlocks:
    def test_single_fault_single_block(self):
        blocks = rfb_blocks(mask_of_cells([(3, 3)], (8, 8)))
        assert len(blocks) == 1
        assert blocks[0].lo == (3, 3) and blocks[0].hi == (3, 3)

    def test_diagonal_cluster_bounding_box(self):
        blocks = rfb_blocks(mask_of_cells([(2, 3), (3, 2)], (8, 8)))
        assert len(blocks) == 1
        assert blocks[0].lo == (2, 2) and blocks[0].hi == (3, 3)

    def test_distance_two_blocks_stay_separate(self):
        # Two singletons two apart leave a one-cell gap: separate blocks.
        blocks = rfb_blocks(mask_of_cells([(2, 2), (2, 4)], (8, 8)))
        assert len(blocks) == 2

    def test_corner_diagonal_blocks_merge_3d(self):
        # In 3-D the local rule does not glue corner-diagonal faults,
        # but their unit blocks touch diagonally and merge into one.
        blocks = rfb_blocks(mask_of_cells([(2, 2, 2), (3, 3, 3)], (6, 6, 6)))
        assert len(blocks) == 1
        assert blocks[0].lo == (2, 2, 2) and blocks[0].hi == (3, 3, 3)

    def test_far_blocks_stay_separate(self):
        blocks = rfb_blocks(mask_of_cells([(1, 1), (6, 6)], (9, 9)))
        assert len(blocks) == 2

    def test_blocks_pairwise_separated(self, rng):
        for _ in range(10):
            mask = random_mask(rng, (10, 10), 12)
            blocks = rfb_blocks(mask)
            for i, a in enumerate(blocks):
                for b in blocks[i + 1:]:
                    assert not a.inflate(1).intersects(b)

    def test_blocks_contain_all_faults(self, rng):
        for _ in range(10):
            mask = random_mask(rng, (8, 8, 8), 20)
            blocks = rfb_blocks(mask)
            for cell in np.argwhere(mask):
                assert any(b.contains(tuple(int(c) for c in cell)) for b in blocks)

    def test_paper_fig1_scene(self):
        # Figure 1(b): staircase faults produce one bounding rectangle.
        cells = [(3, 6), (4, 5), (5, 4), (6, 3), (3, 3)]
        blocks = rfb_blocks(mask_of_cells(cells, (10, 10)))
        assert len(blocks) == 1
        assert blocks[0].lo == (3, 3) and blocks[0].hi == (6, 6)


class TestUnsafeMask:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_union_of_blocks(self, seed):
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (8, 8), int(rng.integers(1, 12)))
        unsafe = rfb_unsafe(mask)
        blocks = rfb_blocks(mask)
        expected = np.zeros_like(mask)
        for b in blocks:
            clipped = b.clip(mask.shape)
            expected[clipped.slices()] = True
        assert np.array_equal(unsafe, expected)

    def test_local_variant_smaller(self, rng):
        for _ in range(10):
            mask = random_mask(rng, (9, 9), 14)
            local = rfb_unsafe(mask, variant="local")
            block = rfb_unsafe(mask, variant="block")
            assert (local <= block).all()

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            rfb_unsafe(np.zeros((3, 3), dtype=bool), variant="huh")


class TestLabelledAdapter:
    def test_statuses(self):
        mask = mask_of_cells([(2, 3), (3, 2)], (8, 8))
        lab = rfb_labelled(mask)
        assert lab.status[2, 3] == FAULTY
        assert lab.status[2, 2] == USELESS  # block member, non-faulty
        assert lab.status[0, 0] == 0

    def test_oriented(self):
        mask = mask_of_cells([(1, 1)], (4, 4))
        o = Orientation((-1, 1), (4, 4))
        lab = rfb_labelled(mask, o)
        assert lab.status[2, 1] == FAULTY  # x flipped: 4-1-1 = 2


class TestDynamicRFBState:
    """Block-local incremental recompute == from-scratch rfb_unsafe."""

    @given(st.integers(0, 2**32 - 1), st.booleans())
    @settings(max_examples=12, deadline=None)
    def test_matches_from_scratch_across_events(self, seed, three_d):
        from repro.baselines.rfb import DynamicRFBState

        rng = np.random.default_rng(seed)
        shape = (6, 6, 6) if three_d else (9, 9)
        live = random_mask(rng, shape, int(rng.integers(2, 12)))
        state = DynamicRFBState(live)
        for step in range(6):
            pool = np.argwhere(~live if step % 2 == 0 else live)
            if len(pool) == 0:
                continue
            k = min(int(rng.integers(1, 4)), len(pool))
            picks = rng.choice(len(pool), size=k, replace=False)
            cells = [tuple(int(v) for v in pool[i]) for i in picks]
            kind = "inject" if step % 2 == 0 else "repair"
            for c in cells:
                live[c] = kind == "inject"
            dirty, swept, full = state.apply(cells, kind)
            want = rfb_unsafe(live)
            assert np.array_equal(state.unsafe, want)
            assert np.array_equal(state.open, ~want)
            status = np.zeros(shape, dtype=np.int8)
            status[want & ~live] = USELESS
            status[live] = FAULTY
            assert np.array_equal(state.status, status)

    def test_inject_inside_block_is_free(self):
        from repro.baselines.rfb import DynamicRFBState

        live = mask_of_cells([(2, 3), (3, 2)], (8, 8))
        state = DynamicRFBState(live)
        assert state.unsafe[2, 2] and state.unsafe[3, 3]
        live[2, 2] = True  # a fault appearing inside the block
        dirty, swept, full = state.apply([(2, 2)], "inject")
        assert dirty is None and swept == 0 and not full
        assert state.status[2, 2] == FAULTY

    def test_dirty_box_covers_every_change(self):
        from repro.baselines.rfb import DynamicRFBState

        rng = np.random.default_rng(5)
        live = random_mask(rng, (10, 10), 8)
        state = DynamicRFBState(live)
        old = state.unsafe.copy()
        pool = np.argwhere(~live)
        cell = tuple(int(v) for v in pool[0])
        live[cell] = True
        dirty, _swept, full = state.apply([cell], "inject")
        changed = np.argwhere(old != state.unsafe)
        if len(changed) == 0:
            assert dirty is None or full
        else:
            assert dirty is not None
            for c in changed:
                assert dirty.contains(tuple(int(v) for v in c))
