"""Tests for forbidden/critical region (shadow) computation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.shadows import (
    entry_cells,
    negative_shadow,
    positive_shadow,
    shadow_masks,
)
from repro.mesh.regions import mask_of_cells
from tests.conftest import random_mask


def shadow_reference(mask: np.ndarray, axis: int, negative: bool) -> np.ndarray:
    """Scalar definition: cell strictly below/above some mask cell."""
    out = np.zeros_like(mask)
    for cell in np.ndindex(mask.shape):
        for other in np.argwhere(mask):
            if all(
                c == o for i, (c, o) in enumerate(zip(cell, other, strict=True)) if i != axis
            ):
                if negative and cell[axis] < other[axis]:
                    out[cell] = True
                if not negative and cell[axis] > other[axis]:
                    out[cell] = True
    return out


class TestShadows:
    def test_rectangle_forbidden_region(self):
        # QY of a rectangle = everything strictly below it, per column.
        mask = mask_of_cells([(2, 3), (3, 3), (2, 4), (3, 4)], (6, 6))
        forbidden, critical = shadow_masks(mask, axis=1)
        assert forbidden[2, 0] and forbidden[3, 2]
        assert not forbidden[1, 0] and not forbidden[2, 5]
        assert critical[2, 5] and critical[3, 5]
        assert not critical[2, 2]

    def test_strictness(self):
        mask = mask_of_cells([(2, 2)], (5, 5))
        forbidden, critical = shadow_masks(mask, axis=1)
        assert not forbidden[2, 2] and not critical[2, 2]
        assert forbidden[2, 1] and critical[2, 3]

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2))
    @settings(max_examples=20, deadline=None)
    def test_matches_reference_2d(self, seed, axis):
        axis = axis % 2
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (5, 5), int(rng.integers(0, 8)))
        assert np.array_equal(
            negative_shadow(mask, axis), shadow_reference(mask, axis, True)
        )
        assert np.array_equal(
            positive_shadow(mask, axis), shadow_reference(mask, axis, False)
        )

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2))
    @settings(max_examples=10, deadline=None)
    def test_matches_reference_3d(self, seed, axis):
        rng = np.random.default_rng(seed)
        mask = random_mask(rng, (4, 4, 4), int(rng.integers(0, 8)))
        assert np.array_equal(
            negative_shadow(mask, axis), shadow_reference(mask, axis, True)
        )
        assert np.array_equal(
            positive_shadow(mask, axis), shadow_reference(mask, axis, False)
        )

    def test_shadow_closed_downward(self, rng):
        # Entering Q via +dim is impossible: the shadow has no "roof"
        # inside itself (if (x,y) in Q then (x,y-1) in Q).
        mask = random_mask(rng, (6, 6), 6)
        q = negative_shadow(mask, 1)
        assert (q[:, 1:] <= (q | mask)[:, :-1]).all()


class TestEntryCells:
    def test_rectangle_entry_cells(self):
        mask = mask_of_cells([(3, 3), (3, 4)], (7, 7))
        # The shadow includes (3,3) itself: it sits below (3,4).
        q = negative_shadow(mask, 1)  # column 3, rows 0..3
        entries = entry_cells(q, 0)  # +X entries: column 2, rows 0..3
        assert entries[2, 0] and entries[2, 1] and entries[2, 2]
        assert entries[2, 3]  # guards the faulty cell's west flank
        assert not entries[2, 4]
        assert entries.sum() == 4

    def test_entry_cells_exclude_shadow_itself(self, rng):
        mask = random_mask(rng, (6, 6), 6)
        q = negative_shadow(mask, 1)
        entries = entry_cells(q, 0)
        assert not (entries & q).any()

    def test_no_entries_along_shadow_axis(self, rng):
        # Stepping +Y inside a column only leaves the Y-shadow: the
        # entry set along the shadow axis itself is empty.
        mask = random_mask(rng, (6, 6), 6)
        q = negative_shadow(mask, 1)
        entries_y = entry_cells(q, 1)
        assert not entries_y.any()
