"""Unit tests for FaultSet and fault generators."""

import numpy as np
import pytest

from repro.experiments.workloads import (
    clustered_fault_mask,
    random_fault_mask,
    sample_safe_pair,
)
from repro.mesh.faults import FaultSet, faults_from_cells
from repro.mesh.topology import Mesh2D, Mesh3D


class TestFaultSet:
    def test_add_remove(self):
        fs = FaultSet(Mesh2D(4), [(1, 1)])
        assert fs.is_faulty((1, 1)) and fs.count == 1
        fs.remove((1, 1))
        assert fs.count == 0

    def test_out_of_mesh_rejected(self):
        with pytest.raises(IndexError):
            FaultSet(Mesh2D(4), [(4, 0)])

    def test_link_fault_disables_both_endpoints(self):
        # Paper Section 1: link faults treated as node faults.
        fs = FaultSet(Mesh3D(4))
        fs.add_link_fault((1, 1, 1), (1, 1, 2))
        assert fs.is_faulty((1, 1, 1)) and fs.is_faulty((1, 1, 2))

    def test_link_fault_requires_adjacency(self):
        fs = FaultSet(Mesh2D(4))
        with pytest.raises(ValueError):
            fs.add_link_fault((0, 0), (1, 1))

    def test_mask_read_only(self):
        fs = FaultSet(Mesh2D(4), [(0, 0)])
        with pytest.raises(ValueError):
            fs.mask[0, 0] = False

    def test_rate_and_contains(self):
        fs = FaultSet(Mesh2D(4), [(0, 0), (1, 1)])
        assert fs.rate == 2 / 16
        assert (0, 0) in fs and (2, 2) not in fs
        assert len(fs) == 2

    def test_copy_is_independent(self):
        fs = FaultSet(Mesh2D(4), [(0, 0)])
        fs2 = fs.copy()
        fs2.add((1, 1))
        assert fs.count == 1 and fs2.count == 2

    def test_from_mask_shape_check(self):
        with pytest.raises(ValueError):
            FaultSet.from_mask(Mesh2D(4), np.zeros((3, 3), dtype=bool))

    def test_faults_from_cells(self):
        mask = faults_from_cells(Mesh2D(4), [(1, 2)])
        assert mask[1, 2] and mask.sum() == 1


class TestGenerators:
    def test_random_exact_count(self, rng):
        mask = random_fault_mask((8, 8), 10, rng=rng)
        assert mask.sum() == 10

    def test_random_respects_protect(self, rng):
        for _ in range(20):
            mask = random_fault_mask((4, 4), 14, rng=rng, protect=((0, 0), (3, 3)))
            assert not mask[0, 0] and not mask[3, 3]

    def test_random_too_many_rejected(self, rng):
        with pytest.raises(ValueError):
            random_fault_mask((2, 2), 5, rng=rng)

    def test_clustered_exact_count(self, rng):
        mask = clustered_fault_mask((10, 10), 12, clusters=2, rng=rng)
        assert mask.sum() == 12

    def test_clustered_is_more_concentrated(self, rng):
        # Mean pairwise distance of clustered faults < uniform faults.
        def mean_dist(mask):
            cells = np.argwhere(mask)
            diffs = np.abs(cells[:, None, :] - cells[None, :, :]).sum(-1)
            return diffs.mean()

        uniform = np.mean([
            mean_dist(random_fault_mask((16, 16), 20, rng=rng)) for _ in range(5)
        ])
        clustered = np.mean([
            mean_dist(clustered_fault_mask((16, 16), 20, clusters=1, rng=rng))
            for _ in range(5)
        ])
        assert clustered < uniform

    def test_sample_safe_pair_properties(self, rng):
        safe = np.ones((6, 6), dtype=bool)
        safe[2, 2] = False
        for _ in range(20):
            pair = sample_safe_pair(safe, rng=rng, min_distance=3)
            assert pair is not None
            a, b = pair
            assert safe[a] and safe[b]
            assert sum(abs(x - y) for x, y in zip(a, b, strict=True)) >= 3

    def test_sample_safe_pair_degenerate(self, rng):
        assert sample_safe_pair(np.zeros((3, 3), dtype=bool), rng=rng) is None
