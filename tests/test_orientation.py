"""Unit + property tests for direction-class orientation algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.orientation import Orientation


class TestConstruction:
    def test_identity(self):
        o = Orientation.identity((4, 5))
        assert o.is_identity
        assert o.signs == (1, 1)

    def test_for_pair_signs(self):
        o = Orientation.for_pair((3, 3), (1, 5), (8, 8))
        assert o.signs == (-1, 1)

    def test_for_pair_equal_axis_defaults_positive(self):
        o = Orientation.for_pair((3, 3), (3, 5), (8, 8))
        assert o.signs == (1, 1)

    def test_all_classes_count(self):
        assert len(Orientation.all_classes((4, 4))) == 4
        assert len(Orientation.all_classes((4, 4, 4))) == 8

    def test_invalid_signs(self):
        with pytest.raises(ValueError):
            Orientation((0, 1), (4, 4))
        with pytest.raises(ValueError):
            Orientation((1,), (4, 4))


class TestGridViews:
    def test_flip_is_view_not_copy(self):
        grid = np.arange(16).reshape(4, 4)
        o = Orientation((-1, 1), (4, 4))
        flipped = o.to_canonical(grid)
        assert flipped.base is grid or flipped.base is grid.base

    def test_involution(self, rng):
        grid = rng.integers(0, 9, size=(4, 5, 6))
        for o in Orientation.all_classes((4, 5, 6)):
            assert np.array_equal(o.from_canonical(o.to_canonical(grid)), grid)

    def test_shape_mismatch_rejected(self):
        o = Orientation.identity((4, 4))
        with pytest.raises(ValueError):
            o.to_canonical(np.zeros((3, 3)))


class TestCoordMapping:
    def test_map_matches_grid_flip(self, rng):
        grid = rng.integers(0, 100, size=(5, 6))
        for o in Orientation.all_classes((5, 6)):
            canon = o.to_canonical(grid)
            for coord in [(0, 0), (4, 5), (2, 3)]:
                assert canon[o.map_coord(coord)] == grid[coord]

    @given(
        sx=st.sampled_from([-1, 1]),
        sy=st.sampled_from([-1, 1]),
        sz=st.sampled_from([-1, 1]),
        coord=st.tuples(
            st.integers(0, 5), st.integers(0, 5), st.integers(0, 5)
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_map_unmap_involution(self, sx, sy, sz, coord):
        o = Orientation((sx, sy, sz), (6, 6, 6))
        assert o.unmap_coord(o.map_coord(coord)) == coord

    def test_pair_becomes_canonical(self, rng):
        for _ in range(30):
            s = tuple(int(v) for v in rng.integers(0, 7, 3))
            d = tuple(int(v) for v in rng.integers(0, 7, 3))
            o = Orientation.for_pair(s, d, (7, 7, 7))
            ms, md = o.map_coord(s), o.map_coord(d)
            assert all(a <= b for a, b in zip(ms, md, strict=True))
