#!/usr/bin/env python
"""Quickstart: the MCC fault model and minimal routing in five minutes.

Builds a 3-D mesh with the paper's Figure-5 fault pattern, labels it,
compares the MCC region against rectangular faulty blocks, checks the
minimal-path condition, and routes a packet adaptively.
"""

import numpy as np

from repro import (
    AdaptiveRouter,
    ConditionEvaluator,
    Mesh3D,
    extract_mccs,
    label_grid,
    rfb_unsafe,
)

FAULTS = [
    (5, 5, 6), (6, 5, 5), (5, 6, 5), (6, 7, 5),
    (7, 6, 5), (5, 4, 7), (4, 5, 7), (7, 8, 4),
]


def main() -> None:
    mesh = Mesh3D(10)
    faults = np.zeros(mesh.shape, dtype=bool)
    for cell in FAULTS:
        faults[cell] = True
    print(f"Mesh: {mesh}, faults: {len(FAULTS)}")

    # 1. Label unsafe nodes (Algorithm 4) for the +X+Y+Z direction class.
    labelled = label_grid(faults)
    counts = labelled.counts()
    print(f"Labelling: {counts}")
    print(f"  (5,5,5) is useless:     {labelled.status[5, 5, 5] == 2}")
    print(f"  (5,5,7) is can't-reach: {labelled.status[5, 5, 7] == 3}")

    # 2. Extract MCCs and compare with the rectangular-block baseline.
    mccs = extract_mccs(labelled, connectivity=2)  # the paper's grouping
    print(f"MCCs: {len(mccs)} (paper: 2); sizes {sorted(m.size for m in mccs)}")
    mcc_overhead = int(labelled.unsafe_mask.sum() - faults.sum())
    rfb_overhead = int(rfb_unsafe(faults).sum() - faults.sum())
    print(f"Non-faulty nodes captured: MCC {mcc_overhead} vs RFB {rfb_overhead}")

    # 3. Sufficient-and-necessary condition (Theorem 2).
    evaluator = ConditionEvaluator(faults)
    for s, d in [((0, 0, 0), (9, 9, 9)), ((5, 5, 0), (5, 5, 9))]:
        print(f"Minimal path {s} -> {d}: {evaluator.exists(s, d)}")

    # 4. Route a packet with the MCC-guided fully adaptive router.
    router = AdaptiveRouter(faults, mode="mcc")
    result = router.route((0, 0, 0), (9, 9, 9))
    print(
        f"Routed (0,0,0) -> (9,9,9): delivered={result.delivered}, "
        f"hops={result.hops} (Manhattan distance 27), "
        f"minimal={result.is_minimal()}"
    )
    print("First hops:", " -> ".join(map(str, result.path[:6])), "...")


if __name__ == "__main__":
    main()
