#!/usr/bin/env python
"""Serving-layer demo: concurrent routing over a churning 3-D mesh.

Spins up the :class:`repro.serve.AsyncRoutingService` on a virtual
clock, drives a seeded one-second soak of concurrent ``await route``
clients while fault events inject and repair cells mid-run, then polls
the SLO metrics snapshot and prints the latency-vs-offered-load table
for three load levels.  Everything is deterministic: rerunning this
script reproduces every number.
"""

import asyncio

from repro import AsyncRoutingService, VirtualClock
from repro.serve import make_trace, run_load, run_offered_load_sweep
from repro.serve.loadgen import summarize

SHAPE = (8, 8, 8)
FAULTS = 20


def main() -> None:
    # 1. A replayable trace: Poisson arrivals at rate 300, four fault
    #    events spread across the run, pairs sampled among healthy cells.
    trace = make_trace(
        SHAPE, FAULTS, profile="soak", rate=300.0, duration=1.0,
        events=4, churn=2, seed=2005,
    )
    print(
        f"Trace: {trace.offered} requests over {trace.duration} virtual "
        f"seconds, {len(trace.event_times)} fault events"
    )

    # 2. Serve it: clients submit concurrently, a 5 ms batching window
    #    coalesces each tick's arrivals into one batched routing call,
    #    and every fault event preempts the queue (in-flight requests
    #    are answered at their submission epoch).
    service = AsyncRoutingService(
        trace.seed_mask.copy(), mode="mcc",
        clock=VirtualClock(), batch_window=0.005,
    )
    records = asyncio.run(run_load(service, trace))
    row = summarize(trace, records)
    print(
        f"Served {row['served']}/{row['offered']} "
        f"(delivered rate {row['delivered_rate']:.3f}), "
        f"p50={row['p50_latency']:.4f} p99={row['p99_latency']:.4f}"
    )

    # 3. The pollable SLO snapshot the service exports at any time.
    m = service.metrics()
    print(
        f"Metrics: batches={m.batches} mean_batch={m.mean_batch:.2f} "
        f"epoch={m.epoch} epoch_lag_max={m.epoch_lag_max} "
        f"cache_hit_rate={m.cache_hit_rate:.3f} shed={m.shed}"
    )

    # 4. The headline table: latency percentiles vs offered load.
    table = run_offered_load_sweep(
        SHAPE, FAULTS, [100.0, 300.0, 1000.0],
        profile="soak", duration=0.5, events=2, seed=2005,
    )
    print()
    print(table.render())


if __name__ == "__main__":
    main()
