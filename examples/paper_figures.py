#!/usr/bin/env python
"""Regenerate the paper's illustrative figures as ASCII art.

Figure 1: rectangular faulty block vs MCC in a 2-D mesh.
Figure 3: boundary construction with chain merging.
Figure 4/7: feasibility-check samples (YES and NO cases).
Figure 5: the 3-D example with the hole at (6,6,5).
Figure 8: adaptive minimal routes around the Figure-5 MCCs.
"""

from repro.experiments import figures


def main() -> None:
    for name, fn in [
        ("FIGURE 1", figures.figure1),
        ("FIGURE 3", figures.figure3_walls),
        ("FIGURE 4 (2-D detection)", lambda: figures.figure4_7_detection(False)),
        ("FIGURE 7 (3-D detection)", lambda: figures.figure4_7_detection(True)),
        ("FIGURE 5", figures.figure5),
        ("FIGURE 8", figures.figure8_routing),
    ]:
        print("=" * 72)
        print(name)
        print("=" * 72)
        print(fn())
        print()


if __name__ == "__main__":
    main()
