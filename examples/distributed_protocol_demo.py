#!/usr/bin/env python
"""Watch the distributed protocols run on the discrete-event network.

Every quantity in this demo is produced by neighbor-to-neighbor
messages: label gossip, two-head-on identification walks, boundary-wall
records, detection messages, and record-guided forwarding.
"""

import numpy as np

from repro import DistributedMCCPipeline, Mesh2D
from repro.core.labelling import label_grid
from repro.viz.ascii_art import render_grid, render_route

FAULTS = [(5, 7), (6, 6), (7, 5), (4, 2), (2, 3)]


def main() -> None:
    mesh = Mesh2D(12)
    faults = np.zeros(mesh.shape, dtype=bool)
    for cell in FAULTS:
        faults[cell] = True

    pipe = DistributedMCCPipeline(mesh, faults, trace=True)
    pipe.build()

    print("Distributed labelling (equals centralized Algorithm 1):")
    same = np.array_equal(pipe.labels_grid(), label_grid(faults).status)
    print(render_grid(pipe.labels_grid()))
    print(f"matches centralized labelling: {same}\n")

    print("Identified MCC sections (two-head-on ring walks):")
    for (_plane, corner), shape in sorted(pipe.identified_sections().items()):
        print(f"  corner {corner}: {sorted(shape)}")

    print("\nBoundary records at (3,1) (wall of the staircase MCC):")
    for rec in pipe.records_at((3, 1)):
        print(
            f"  owner {rec['owner']}: shadow axis {'XY'[rec['shadow_axis']]}, "
            f"guards +{'XY'[rec['guard_axis']]}, tops {rec['tops']}"
        )

    print("\nMessage cost by kind:")
    for kind, count in sorted(pipe.message_counts().items()):
        print(f"  {kind:40s} {count}")

    result = pipe.route((0, 0), (11, 11))
    print(f"\nRouting (0,0) -> (11,11): {result['status']}")
    print(render_route(pipe.labels_grid(), result["path"]))


if __name__ == "__main__":
    main()
