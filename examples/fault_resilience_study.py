#!/usr/bin/env python
"""Fault-resilience study: how far does minimal routing degrade?

Sweeps the fault rate in a 3-D mesh and reports, per model, the
fraction of random safe pairs that still admit a minimal path — a
compact version of the paper's evaluation (experiment T2), including
the clustered-fault variant that models correlated hardware failures.
"""

from repro.experiments.exp_region_overhead import run_region_overhead
from repro.experiments.exp_success_rate import run_success_rate


def main() -> None:
    shape = (12, 12, 12)
    counts = [8, 17, 43, 86, 130]  # ~0.5% to 7.5%

    print("Minimal-routing success rate (uniform faults):")
    table = run_success_rate(shape, counts, pairs=120, trials=4, seed=42)
    print(table.render())
    print()

    print("Non-faulty nodes captured per fault region model:")
    overhead = run_region_overhead(shape, counts, trials=10, seed=42)
    print(overhead.render())
    print()

    print("Same, with clustered faults (correlated failures):")
    clustered = run_region_overhead(
        shape, counts[:3], trials=10, seed=42, clustered=True
    )
    print(clustered.render())

    last = table.rows[-1]
    print(
        f"\nAt {last['fault_rate']:.1%} faults: the MCC model still routes "
        f"{last['mcc']:.0%} of pairs minimally (the theoretical optimum — "
        f"it equals the oracle), the rectangular-block model only "
        f"{last['rfb']:.0%}, and dimension-order e-cube {last['ecube']:.0%}."
    )


if __name__ == "__main__":
    main()
