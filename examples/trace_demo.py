#!/usr/bin/env python
"""Observability demo: trace a sweep, export Perfetto, dump metrics.

Runs the T4 DES-routing sweep on a small mesh with ``trace=`` set,
writes the Chrome/Perfetto trace-event JSON (load it at
``https://ui.perfetto.dev``), and prints the deterministic half of the
telemetry: which spans fired, per layer, in virtual order.  Wall-clock
durations are real timings and change run to run; everything printed
here replays exactly.
"""

import json
import tempfile
from collections import Counter
from pathlib import Path

from repro import obs
from repro.experiments.exp_des_routing import run_des_routing
from repro.simkit.stats import StatsCollector

SHAPE = (5, 5, 5)
FAULT_COUNTS = [2, 4]


def main() -> None:
    # 1. Any experiment entry point takes trace= (the CLIs expose it as
    #    --trace): the sweep runs normally and also writes its spans.
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "t4_small.perfetto.json"
        table = run_des_routing(
            SHAPE, FAULT_COUNTS, queries=4, trials=1, seed=7,
            trace=str(trace_path),
        )
        events = json.loads(trace_path.read_text())["traceEvents"]
    print(table.render())

    spans = [e for e in events if e["ph"] in ("X", "i")]
    print(f"\nTrace: {len(spans)} spans across the stack")
    by_layer = Counter(e["cat"] for e in spans)
    for layer in sorted(by_layer):
        names = sorted({e["name"] for e in spans if e["cat"] == layer})
        print(f"  {layer:<12} x{by_layer[layer]:<3} {', '.join(names)}")

    # 2. The same tracer API works standalone: spans nest, carry
    #    attributes, and stamp virtual time explicitly.
    tracer = obs.Tracer(track="demo")
    with obs.tracing(tracer):
        with obs.span("outer", cat="demo", n=2) as sp:
            sp.set_vt(start=0.0, end=3.0)
            with obs.span("inner", cat="demo"):
                pass
    print("\nStandalone spans:", [s.name for s in tracer.spans])

    # 3. Metrics: the DES stats collector publishes into the registry;
    #    histograms back the same percentile math the tables use.
    stats = StatsCollector()
    for latency, query in ((2.0, "q0"), (3.0, "q0"), (5.0, "q1")):
        stats.on_frame(latency, query=query)
        stats.on_send("frame", query=query)
    registry = obs.MetricsRegistry()
    stats.publish(registry)
    print("Metrics rows:")
    for row in registry.rows():
        print("  ", json.dumps(row, sort_keys=True))


if __name__ == "__main__":
    main()
