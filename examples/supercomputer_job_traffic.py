#!/usr/bin/env python
"""Blue-Gene-class scenario: job traffic across a partially failed mesh.

The paper motivates 3-D meshes with machines like Blue Gene and the
Cray T3D (Section 1 references [1, 5]).  This example models a 16^3
partition with a failed coolant zone (clustered faults) plus scattered
node failures, then pushes all-to-all style job traffic through three
routers: MCC-guided adaptive, blind adaptive, and dimension-order.
"""

from repro import ecube_succeeds, greedy_route, label_grid, make_service
from repro.experiments.workloads import clustered_fault_mask, sample_safe_pair
from repro.util.rng import make_rng


def main() -> None:
    rng = make_rng(7)
    shape = (16, 16, 16)
    # A failed cooling zone (clustered) plus scattered single failures.
    faults = clustered_fault_mask(shape, 60, clusters=2, spread=1.8, rng=rng)
    extra = 0
    while extra < 40:
        cell = tuple(int(v) for v in rng.integers(0, 16, 3))
        if not faults[cell]:
            faults[cell] = True
            extra += 1
    labelled = label_grid(faults)
    print(
        f"Partition {shape}: {int(faults.sum())} failed nodes "
        f"({faults.mean():.1%}), {int(labelled.unsafe_mask.sum())} unsafe "
        "in the canonical class"
    )

    # One service per partition: every job batch shares the per-class
    # labelled grids and one reverse flood per distinct destination.
    service = make_service(faults, mode="mcc")
    jobs = 400
    pairs = []
    for _ in range(jobs):
        pair = sample_safe_pair(~faults, rng=rng, min_distance=8)
        if pair is not None:
            pairs.append(pair)
    stats = {"mcc": 0, "blind": 0, "ecube": 0, "feasible": 0}
    hops_total = 0
    for (src, dst), result in zip(pairs, service.route_batch(pairs), strict=True):
        if result.feasible:
            stats["feasible"] += 1
        if result.delivered and result.is_minimal():
            stats["mcc"] += 1
            hops_total += result.hops
        ok, _ = greedy_route(faults, src, dst)
        stats["blind"] += ok
        stats["ecube"] += ecube_succeeds(faults, src, dst)

    print(f"\nJob messages: {jobs} (minimum distance 8)")
    print(f"  minimal-path feasible (Theorem 2): {stats['feasible']}")
    print(f"  delivered minimally by MCC router:  {stats['mcc']}")
    print(f"  delivered by blind adaptive:        {stats['blind']}")
    print(f"  delivered by dimension-order:       {stats['ecube']}")
    if stats["mcc"]:
        print(f"  mean minimal path length: {hops_total / stats['mcc']:.1f} hops")
    assert stats["mcc"] == stats["feasible"], "MCC router must match Theorem 2"


if __name__ == "__main__":
    main()
