"""CI gate: the serving layer is replayable, epoch-clean, and fast enough.

Three checks on a short soak through the load harness
(:mod:`repro.serve.loadgen`):

1. **Replay byte-identity** — the latency-vs-offered-load table saved
   as JSONL is byte-for-byte identical across two runs of the same
   seed (the whole asyncio pipeline is a pure function of the seed on
   a :class:`~repro.serve.clock.VirtualClock`).
2. **Epoch-violation gate** — run with ``REPRO_SANITIZE=1`` the online
   epoch shadow re-checks every served result against its submission
   epoch; any violation raises and fails the job, and the gate also
   requires the shadow to have actually checked results (so a wiring
   regression cannot silently disable it).
3. **Throughput floor** — requests served per *wall-clock* second
   while replaying the virtual-time soak must clear ``--min-throughput``
   (virtual time costs nothing; this measures routing + batching work).

Run (exits non-zero on any failure)::

    REPRO_SANITIZE=1 PYTHONPATH=src python benchmarks/bench_serve_soak.py \
        --shape 8 8 8 --faults 20 --rates 100 300 --duration 0.5 \
        --events 3 --min-throughput 200
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import tempfile
import time

from repro.serve.clock import VirtualClock
from repro.serve.loadgen import make_trace, run_load, run_offered_load_sweep
from repro.serve.service import AsyncRoutingService


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shape", type=int, nargs="+", default=[8, 8, 8])
    parser.add_argument("--faults", type=int, default=20)
    parser.add_argument("--rates", type=float, nargs="+", default=[100.0, 300.0])
    parser.add_argument("--profile", default="soak")
    parser.add_argument("--duration", type=float, default=0.5)
    parser.add_argument("--events", type=int, default=3)
    parser.add_argument("--churn", type=int, default=2)
    parser.add_argument("--batch-window", type=float, default=0.005)
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument(
        "--min-throughput", type=float, default=200.0,
        help="requests served per wall-clock second, floor",
    )
    args = parser.parse_args()
    shape = tuple(args.shape)

    # 1. Replay byte-identity of the saved JSONL table.
    with tempfile.TemporaryDirectory() as tmp:
        paths = [os.path.join(tmp, name) for name in ("a.jsonl", "b.jsonl")]
        for path in paths:
            table = run_offered_load_sweep(
                shape,
                args.faults,
                list(args.rates),
                profile=args.profile,
                duration=args.duration,
                events=args.events,
                churn=args.churn,
                batch_window=args.batch_window,
                seed=args.seed,
                save=path,
            )
        with open(paths[0], "rb") as fh:
            first = fh.read()
        with open(paths[1], "rb") as fh:
            second = fh.read()
        if first != second:
            fail("saved load tables differ between identical-seed runs")
    print(table.render())
    print(f"PASS: saved table byte-identical across replays ({len(first)} bytes)")

    # 2 + 3. One soak at the highest rate: epoch shadow active (when
    # sanitizing) and wall-clock throughput above the floor.
    trace = make_trace(
        shape,
        args.faults,
        profile=args.profile,
        rate=max(args.rates),
        duration=args.duration,
        events=args.events,
        churn=args.churn,
        seed=args.seed,
    )
    service = AsyncRoutingService(
        trace.seed_mask.copy(),
        clock=VirtualClock(),
        batch_window=args.batch_window,
    )
    started = time.perf_counter()
    records = asyncio.run(run_load(service, trace))
    elapsed = time.perf_counter() - started
    served = sum(r.status != "shed" for r in records)

    if os.environ.get("REPRO_SANITIZE"):
        shadow = getattr(service.online, "_epoch_shadow", None)
        if shadow is None or shadow.checked_results == 0:
            fail("REPRO_SANITIZE=1 but the epoch shadow checked nothing")
        # A violation would have raised EpochViolationError mid-run.
        print(
            f"PASS: epoch shadow verified {shadow.checked_results} results, "
            "zero violations"
        )
    else:
        print("note: REPRO_SANITIZE not set; epoch-shadow gate skipped")

    throughput = served / elapsed if elapsed > 0 else float("inf")
    print(
        f"soak: {served} served in {elapsed:.3f}s wall "
        f"({throughput:.0f} req/s, floor {args.min_throughput:.0f})"
    )
    if throughput < args.min_throughput:
        fail(
            f"throughput {throughput:.0f} req/s below floor "
            f"{args.min_throughput:.0f}"
        )
    print("PASS: throughput floor cleared")


if __name__ == "__main__":
    main()
