"""CI gate: incremental relabelling beats full recompute on small deltas.

For single-fault inject deltas on a 32^3 mesh (the acceptance scenario),
:class:`repro.online.DynamicFaultModel` must relabel at least
``--min-speedup`` times faster than a from-scratch ``label_grid`` of
the same mask — and byte-identically, which is re-verified here for
every delta (inject *and* the repair that rolls it back).

The incremental path wins two ways: the warm-started fixed point only
sweeps the event's dirty bounding box, and the frontier pre-check skips
the sweep entirely when no neighbor's rule verdict flipped (the common
case for sparse faults).  Repairs are reported for information; the
gate is on inject deltas.

Run (exits non-zero below the speedup floor or on any label mismatch)::

    PYTHONPATH=src python benchmarks/bench_incremental_label.py \
        --shape 32 32 32 --faults 60 --deltas 20 --min-speedup 3.0
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core.labelling import label_grid
from repro.online import DynamicFaultModel


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shape", type=int, nargs="+", default=[32, 32, 32])
    parser.add_argument("--faults", type=int, default=60)
    parser.add_argument("--deltas", type=int, default=20)
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="best-of-k timing per delta (both sides), damping CI noise",
    )
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument("--min-speedup", type=float, default=3.0)
    args = parser.parse_args()

    shape = tuple(args.shape)
    rng = np.random.default_rng(args.seed)
    size = int(np.prod(shape))
    mask = np.zeros(shape, dtype=bool)
    mask.flat[rng.choice(size, size=args.faults, replace=False)] = True

    model = DynamicFaultModel(mask)
    baseline = model.labelled_for()  # build the identity class once
    want0 = label_grid(model.fault_mask)
    if not np.array_equal(want0.status, baseline.status):
        fail("initial labels diverge from label_grid")

    def best_of(op, undo):
        """Min wall time of ``op`` over the repeat budget; ends with
        ``op`` applied (each repeat rolls back via ``undo`` first)."""
        best = float("inf")
        for r in range(args.repeats):
            if r:
                undo()
            t0 = time.perf_counter()
            op()
            best = min(best, time.perf_counter() - t0)
        return best

    inject_s = 0.0
    repair_s = 0.0
    full_s = 0.0
    for _ in range(args.deltas):
        healthy = np.argwhere(~model.fault_mask)
        cell = tuple(int(v) for v in healthy[rng.integers(len(healthy))])

        inject_s += best_of(
            lambda: model.inject([cell]), lambda: model.repair([cell])
        )
        want = [None]

        def relabel():
            want[0] = label_grid(model.fault_mask)

        full_s += best_of(relabel, lambda: None)
        if not np.array_equal(want[0].status, model.labelled_for().status):
            fail(f"inject delta at {cell}: labels diverge from label_grid")

        repair_s += best_of(
            lambda: model.repair([cell]), lambda: model.inject([cell])
        )
        if not np.array_equal(want0.status, model.labelled_for().status):
            fail(f"repair delta at {cell}: labels diverge from baseline")

    speedup = full_s / inject_s if inject_s else float("inf")
    repair_speedup = full_s / repair_s if repair_s else float("inf")
    dims = "x".join(map(str, shape))
    print(
        f"{dims} mesh, {args.faults} base faults, {args.deltas} single-fault "
        f"deltas (stats: {model.stats})"
    )
    print(
        f"  full label_grid     {full_s * 1e3:8.2f} ms total "
        f"({full_s / args.deltas * 1e6:8.1f} us/delta)"
    )
    print(
        f"  incremental inject  {inject_s * 1e3:8.2f} ms total "
        f"({inject_s / args.deltas * 1e6:8.1f} us/delta)  {speedup:6.1f}x"
    )
    print(
        f"  incremental repair  {repair_s * 1e3:8.2f} ms total "
        f"({repair_s / args.deltas * 1e6:8.1f} us/delta)  "
        f"{repair_speedup:6.1f}x"
    )
    if speedup < args.min_speedup:
        fail(
            f"incremental inject speedup {speedup:.2f}x is below the "
            f"{args.min_speedup:.2f}x floor"
        )
    print(
        f"PASS: byte-identical labels across {args.deltas} inject+repair "
        f"deltas; inject speedup {speedup:.1f}x >= {args.min_speedup:.1f}x"
    )


if __name__ == "__main__":
    main()
