"""Benchmark harness configuration.

Each benchmark regenerates one table/figure from DESIGN.md's experiment
index, prints the rows (so `pytest benchmarks/ --benchmark-only -s`
reproduces the paper's evaluation output), and feeds pytest-benchmark a
representative kernel so timings are tracked too.
"""

def emit(table_or_text) -> None:
    """Print an experiment artifact under pytest's captured output."""
    text = table_or_text if isinstance(table_or_text, str) else table_or_text.render()
    print("\n" + text)
