"""B: batched routing throughput — route_batch vs per-call route_adaptive.

The acceptance target for the batch service: on a 16^3 mesh with 10k
random pairs over one fault pattern, ``RoutingService.route_batch`` must
be at least 5x faster than per-pair :func:`route_adaptive` (which
rebuilds labelled grids, walls, and reachability floods per call) while
producing element-wise identical :class:`RouteResult` outcomes.

Run standalone for the full comparison::

    PYTHONPATH=src python benchmarks/bench_batch_routing.py
    PYTHONPATH=src python benchmarks/bench_batch_routing.py \
        --shape 8 8 8 --pairs 500 --faults 40 --min-speedup 2.0  # CI smoke
"""

import argparse
import json
import os
import time

import numpy as np

from repro.experiments.workloads import random_fault_mask
from repro.routing.batch import RoutingService
from repro.routing.engine import route_adaptive
from repro.util.rng import make_rng


def sample_pairs(fault_mask: np.ndarray, count: int, rng) -> list:
    """Random non-faulty (source, dest) pairs (may be infeasible)."""
    cells = np.argwhere(~fault_mask)
    picks = rng.integers(0, cells.shape[0], size=(count, 2))
    return [
        (tuple(int(c) for c in cells[i]), tuple(int(c) for c in cells[j]))
        for i, j in picks
    ]


def results_identical(a, b) -> bool:
    return (a.delivered, a.path, a.feasible, a.stuck_at, a.reason) == (
        b.delivered,
        b.path,
        b.feasible,
        b.stuck_at,
        b.reason,
    )


def run_comparison(
    shape=(16, 16, 16),
    pairs=10_000,
    faults=120,
    mode="mcc",
    seed=2005,
) -> dict:
    """Time batched vs per-call routing; verify element-wise identity."""
    rng = make_rng(seed)
    mask = random_fault_mask(shape, faults, rng=rng)
    batch_pairs = sample_pairs(mask, pairs, rng)

    t0 = time.perf_counter()
    batched = RoutingService(mask, mode=mode).route_batch(batch_pairs)
    t_batch = time.perf_counter() - t0

    t0 = time.perf_counter()
    solo = [route_adaptive(mask, s, d, mode=mode) for s, d in batch_pairs]
    t_solo = time.perf_counter() - t0

    mismatches = sum(
        not results_identical(a, b) for a, b in zip(batched, solo, strict=True)
    )
    return {
        "shape": shape,
        "pairs": pairs,
        "faults": faults,
        "mode": mode,
        "delivered": sum(r.delivered for r in batched),
        "t_batch_s": t_batch,
        "t_percall_s": t_solo,
        "speedup": t_solo / t_batch if t_batch else float("inf"),
        "batch_pairs_per_s": pairs / t_batch if t_batch else float("inf"),
        "mismatches": mismatches,
    }


def test_batch_routing_throughput(benchmark):
    """Track batched throughput; identity vs per-call on a small mesh."""
    rng = make_rng(7)
    mask = random_fault_mask((8, 8, 8), 40, rng=rng)
    batch_pairs = sample_pairs(mask, 400, rng)
    service = RoutingService(mask, mode="mcc")
    results = benchmark(service.route_batch, batch_pairs)
    solo = [route_adaptive(mask, s, d) for s, d in batch_pairs]
    assert all(results_identical(a, b) for a, b in zip(results, solo, strict=True))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shape", type=int, nargs="+", default=[16, 16, 16])
    parser.add_argument("--pairs", type=int, default=10_000)
    parser.add_argument("--faults", type=int, default=120)
    parser.add_argument("--mode", default="mcc")
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="fail when batch speedup drops below this factor",
    )
    parser.add_argument(
        "--out-dir",
        default="bench_artifacts",
        help="directory for the BENCH_batch_routing.json summary",
    )
    args = parser.parse_args()
    stats = run_comparison(
        shape=tuple(args.shape),
        pairs=args.pairs,
        faults=args.faults,
        mode=args.mode,
        seed=args.seed,
    )
    # Machine-readable sibling of the printed report (written before the
    # gates so a failing run still leaves its numbers behind).
    os.makedirs(args.out_dir, exist_ok=True)
    summary = dict(stats, shape=list(stats["shape"]), min_speedup=args.min_speedup)
    out = os.path.join(args.out_dir, "BENCH_batch_routing.json")
    with open(out, "w") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(
        f"batched routing  {stats['mode']}  mesh={stats['shape']}  "
        f"pairs={stats['pairs']}  faults={stats['faults']}"
    )
    print(
        f"  route_batch   : {stats['t_batch_s']:8.3f} s  "
        f"({stats['batch_pairs_per_s']:,.0f} pairs/s)"
    )
    print(f"  route_adaptive: {stats['t_percall_s']:8.3f} s  (per-call)")
    print(f"  speedup       : {stats['speedup']:8.1f}x")
    print(f"  delivered     : {stats['delivered']} / {stats['pairs']}")
    assert stats["mismatches"] == 0, (
        f"{stats['mismatches']} batched results differ from per-call routing"
    )
    assert stats["speedup"] >= args.min_speedup, (
        f"speedup {stats['speedup']:.1f}x below target {args.min_speedup}x"
    )
    print("  results element-wise identical; target met")
    print(f"  summary       : {out}")


if __name__ == "__main__":
    main()
