"""F1–F8: regenerate the paper's illustrative figures (ASCII form)."""

from benchmarks.conftest import emit
from repro.experiments import figures


def test_fig1(benchmark):
    text = figures.figure1()
    emit(text)
    assert "MCC" in text and "rectangular" in text
    benchmark(figures.figure1)


def test_fig5(benchmark):
    text = figures.figure5()
    emit(text)
    assert "MCC count (paper grouping): 2" in text
    benchmark(figures.figure5)


def test_fig3_walls(benchmark):
    text = figures.figure3_walls()
    emit(text)
    assert "merged chains" in text
    benchmark(figures.figure3_walls)


def test_fig4_fig7(benchmark):
    text2 = figures.figure4_7_detection(three_d=False)
    text3 = figures.figure4_7_detection(three_d=True)
    emit(text2)
    emit(text3)
    assert "feasible=False" in text2  # the NO case
    assert "feasible=True" in text3
    benchmark(figures.figure4_7_detection, three_d=True)


def test_fig8(benchmark):
    text = figures.figure8_routing()
    emit(text)
    assert "delivered=True" in text
    benchmark(figures.figure8_routing)
