"""T5: fidelity of conditions, detection, and router vs the oracle.

Expected shape: 100% agreement for the canonical (reachability-form)
condition and the detection walks; 100% router completeness and
exclusion exactness (properties P2/P3).
"""

from benchmarks.conftest import emit
from repro.core.conditions import ConditionEvaluator
from repro.experiments.exp_fidelity import run_fidelity
from repro.experiments.workloads import random_fault_mask


def test_t5_fidelity_2d(benchmark):
    table = run_fidelity((12, 12), [6, 14], pairs=40, trials=4, seed=2005)
    emit(table)
    for row in table.rows:
        assert row["cond_agree"] >= 0.999
        assert row["detect_agree"] >= 0.999
        assert row["router_complete"] >= 0.999

    mask = random_fault_mask((12, 12), 10, rng=17)
    evaluator = ConditionEvaluator(mask)
    benchmark(evaluator.exists, (0, 0), (11, 11))


def test_t5_fidelity_3d(benchmark):
    table = run_fidelity((8, 8, 8), [8, 25], pairs=30, trials=3, seed=2005)
    emit(table)
    for row in table.rows:
        assert row["cond_agree"] >= 0.999
        assert row["detect_agree"] >= 0.98  # walk form; see EXPERIMENTS.md
        assert row["router_complete"] >= 0.999

    mask = random_fault_mask((8, 8, 8), 20, rng=17)
    evaluator = ConditionEvaluator(mask)
    benchmark(evaluator.exists, (0, 0, 0), (7, 7, 7))
