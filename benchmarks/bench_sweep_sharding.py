"""B: multi-pattern sweep scaling — sharded runner vs the serial loop.

The acceptance target for the sharded sweep runner: on a 12^3 mesh the
T2 success-rate sweep with 4 workers must beat the serial in-process
pattern loop by at least 2x (near-linear on enough cores) while the
merged result tables stay **byte-identical** for 1, 2, and 4 shards.

The identity half of the gate is unconditional.  The speedup half is
physical: a 4-worker run cannot beat serial on a single-core container,
so when fewer than 2 CPUs are available the speedup assertion is
reported but skipped (the CI smoke gate runs on multi-core runners).

Run standalone for the full comparison::

    PYTHONPATH=src python benchmarks/bench_sweep_sharding.py
    PYTHONPATH=src python benchmarks/bench_sweep_sharding.py \
        --shape 8 8 8 --fault-counts 10 30 --trials 6 --pairs 60 \
        --workers 2 --min-speedup 1.2   # CI smoke gate

Flags: ``--shape``/``--fault-counts``/``--trials``/``--pairs``/``--seed``
size the sweep; ``--workers`` the parallel process count;
``--min-speedup`` the gate (checked only when enough CPUs exist);
``--check-shards`` the shard counts whose merged tables must match.
"""

import argparse
import os
import time

from repro.parallel.sharding import SweepSpec, run_sweep


def run_comparison(
    shape=(12, 12, 12),
    fault_counts=(20, 60, 120),
    trials=8,
    pairs=200,
    workers=4,
    seed=2005,
    check_shards=(1, 2, 4),
) -> dict:
    """Time serial vs sharded sweeps; verify shard-count invariance."""
    spec = SweepSpec(
        experiment="success_rate",
        shape=tuple(shape),
        fault_counts=tuple(fault_counts),
        trials=trials,
        seed=seed,
        params={"pairs": pairs},
    )
    t0 = time.perf_counter()
    serial = run_sweep(spec, workers=1)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    sharded = run_sweep(spec, workers=workers)
    t_sharded = time.perf_counter() - t0

    # shards=1 IS the serial baseline — no point recomputing it.
    identical = all(
        run_sweep(spec, workers=1, shards=n).to_csv() == serial.to_csv()
        for n in check_shards
        if n != 1
    ) and sharded.to_csv() == serial.to_csv()
    return {
        "table": serial,
        "patterns": len(fault_counts) * trials,
        "workers": workers,
        "t_serial_s": t_serial,
        "t_sharded_s": t_sharded,
        "speedup": t_serial / t_sharded if t_sharded else float("inf"),
        "identical": identical,
        "check_shards": tuple(check_shards),
    }


def test_sweep_sharding_smoke(benchmark):
    """Shard invariance + a tracked timing of the 2-shard in-process path."""
    from benchmarks.conftest import emit

    spec = SweepSpec(
        experiment="success_rate",
        shape=(8, 8, 8),
        fault_counts=(10, 30),
        trials=4,
        seed=2005,
        params={"pairs": 60},
    )
    serial = run_sweep(spec, workers=1)
    emit(serial)
    for n in (2, 4):
        assert run_sweep(spec, workers=1, shards=n).to_csv() == serial.to_csv()
    benchmark(run_sweep, spec, workers=1, shards=2)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shape", type=int, nargs="+", default=[12, 12, 12])
    parser.add_argument(
        "--fault-counts", type=int, nargs="+", default=[20, 60, 120]
    )
    parser.add_argument("--trials", type=int, default=8)
    parser.add_argument("--pairs", type=int, default=200)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument(
        "--check-shards",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        help="shard counts whose merged tables must be byte-identical",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="fail when the sharded speedup drops below this factor "
        "(only enforced when at least 2 CPUs are available)",
    )
    args = parser.parse_args()
    stats = run_comparison(
        shape=tuple(args.shape),
        fault_counts=tuple(args.fault_counts),
        trials=args.trials,
        pairs=args.pairs,
        workers=args.workers,
        seed=args.seed,
        check_shards=tuple(args.check_shards),
    )
    print(stats["table"].render())
    print(
        f"\nsharded sweep  mesh={tuple(args.shape)}  "
        f"patterns={stats['patterns']}  pairs/pattern={args.pairs}"
    )
    print(f"  serial loop   : {stats['t_serial_s']:8.3f} s  (workers=1)")
    print(
        f"  sharded       : {stats['t_sharded_s']:8.3f} s  "
        f"(workers={stats['workers']})"
    )
    print(f"  speedup       : {stats['speedup']:8.2f}x")
    assert stats["identical"], (
        f"merged tables differ across shard counts {stats['check_shards']}"
    )
    print(f"  merged tables byte-identical for shards {stats['check_shards']}")
    cpus = os.cpu_count() or 1
    if cpus < 2:
        print(
            f"  speedup gate  : SKIPPED ({cpus} CPU available; "
            f"parallel speedup is not physical here)"
        )
        return
    assert stats["speedup"] >= args.min_speedup, (
        f"speedup {stats['speedup']:.2f}x below target {args.min_speedup}x"
    )
    print(f"  speedup target {args.min_speedup}x met")


if __name__ == "__main__":
    main()
