"""B: multi-pattern sweep scaling — sharded runner vs the serial loop.

The acceptance target for the sharded sweep runner: on a 12^3 mesh the
T2 success-rate sweep with 4 workers must beat the serial in-process
pattern loop by at least 2x (near-linear on enough cores) while the
merged result tables stay **byte-identical** for 1, 2, and 4 shards.

The identity half of the gate is unconditional.  The speedup half is
physical: a 4-worker run cannot beat serial on a single-core container,
so when fewer than 2 CPUs are available the speedup assertion is
reported but skipped (the CI smoke gate runs on multi-core runners).

Run standalone for the full comparison::

    PYTHONPATH=src python benchmarks/bench_sweep_sharding.py
    PYTHONPATH=src python benchmarks/bench_sweep_sharding.py \
        --shape 8 8 8 --fault-counts 10 30 --trials 6 --pairs 60 \
        --workers 2 --min-speedup 1.2   # CI smoke gate

Flags: ``--shape``/``--fault-counts``/``--trials``/``--pairs``/``--seed``
size the sweep; ``--workers`` the parallel process count;
``--min-speedup`` the gate (checked only when enough CPUs exist);
``--check-shards`` the shard counts whose merged tables must match.
"""

import argparse
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.parallel.sharding import SweepSpec, run_sweep

_REPO_ROOT = Path(__file__).resolve().parent.parent


def run_comparison(
    shape=(12, 12, 12),
    fault_counts=(20, 60, 120),
    trials=8,
    pairs=200,
    workers=4,
    seed=2005,
    check_shards=(1, 2, 4),
) -> dict:
    """Time serial vs sharded sweeps; verify shard-count invariance."""
    spec = SweepSpec(
        experiment="success_rate",
        shape=tuple(shape),
        fault_counts=tuple(fault_counts),
        trials=trials,
        seed=seed,
        params={"pairs": pairs},
    )
    t0 = time.perf_counter()
    serial = run_sweep(spec, workers=1)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    sharded = run_sweep(spec, workers=workers)
    t_sharded = time.perf_counter() - t0

    # shards=1 IS the serial baseline — no point recomputing it.
    identical = all(
        run_sweep(spec, workers=1, shards=n).to_csv() == serial.to_csv()
        for n in check_shards
        if n != 1
    ) and sharded.to_csv() == serial.to_csv()
    return {
        "table": serial,
        "patterns": len(fault_counts) * trials,
        "workers": workers,
        "t_serial_s": t_serial,
        "t_sharded_s": t_sharded,
        "speedup": t_serial / t_sharded if t_sharded else float("inf"),
        "identical": identical,
        "check_shards": tuple(check_shards),
    }


def run_hashseed_invariance(
    shape=(8, 8),
    fault_counts=(4, 10),
    trials=3,
    seed=2005,
    hash_seeds=(1, 4242),
) -> dict:
    """Run one small T1 sweep per ``PYTHONHASHSEED`` in fresh
    interpreters; the merged tables, durable JSONL files, and
    checkpoint journals must all be byte-identical.

    Hash randomization perturbs ``str``/``tuple`` set and dict-order
    edge cases that a same-process rerun can never expose — this is the
    gate the ``repro-check`` D103 rule is ultimately about.
    """
    env_base = {k: v for k, v in os.environ.items() if k != "PYTHONHASHSEED"}
    env_base["PYTHONPATH"] = str(_REPO_ROOT / "src") + (
        os.pathsep + env_base["PYTHONPATH"] if env_base.get("PYTHONPATH") else ""
    )
    runs = []
    with tempfile.TemporaryDirectory() as tmp:
        for hs in hash_seeds:
            save = Path(tmp) / f"table-{hs}.jsonl"
            ckpt = Path(tmp) / f"ckpt-{hs}.jsonl"
            cmd = [
                sys.executable,
                "-m",
                "repro.parallel",
                "t1",
                "--shape",
                *map(str, shape),
                "--fault-counts",
                *map(str, fault_counts),
                "--trials",
                str(trials),
                "--seed",
                str(seed),
                "--save",
                str(save),
                "--checkpoint",
                str(ckpt),
                "--csv",
            ]
            proc = subprocess.run(
                cmd,
                capture_output=True,
                text=True,
                env=dict(env_base, PYTHONHASHSEED=str(hs)),
                cwd=str(_REPO_ROOT),
            )
            if proc.returncode != 0:
                raise RuntimeError(
                    f"sweep under PYTHONHASHSEED={hs} failed:\n{proc.stderr}"
                )
            runs.append(
                {
                    "hashseed": hs,
                    "csv": proc.stdout,
                    "table_bytes": save.read_bytes(),
                    "checkpoint_bytes": ckpt.read_bytes(),
                }
            )
    first = runs[0]
    return {
        "hash_seeds": tuple(hash_seeds),
        "csv_identical": all(r["csv"] == first["csv"] for r in runs),
        "table_identical": all(
            r["table_bytes"] == first["table_bytes"] for r in runs
        ),
        "checkpoint_identical": all(
            r["checkpoint_bytes"] == first["checkpoint_bytes"] for r in runs
        ),
        "rows": len(first["table_bytes"].splitlines()) - 1,
    }


def test_sweep_hashseed_invariance():
    """T1 results must not depend on interpreter hash randomization."""
    stats = run_hashseed_invariance()
    assert stats["rows"] > 0
    assert stats["csv_identical"], "rendered CSV differs across hash seeds"
    assert stats["table_identical"], "saved JSONL differs across hash seeds"
    assert stats["checkpoint_identical"], (
        "checkpoint journals differ across hash seeds"
    )


def test_sweep_sharding_smoke(benchmark):
    """Shard invariance + a tracked timing of the 2-shard in-process path."""
    from benchmarks.conftest import emit

    spec = SweepSpec(
        experiment="success_rate",
        shape=(8, 8, 8),
        fault_counts=(10, 30),
        trials=4,
        seed=2005,
        params={"pairs": 60},
    )
    serial = run_sweep(spec, workers=1)
    emit(serial)
    for n in (2, 4):
        assert run_sweep(spec, workers=1, shards=n).to_csv() == serial.to_csv()
    benchmark(run_sweep, spec, workers=1, shards=2)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shape", type=int, nargs="+", default=[12, 12, 12])
    parser.add_argument(
        "--fault-counts", type=int, nargs="+", default=[20, 60, 120]
    )
    parser.add_argument("--trials", type=int, default=8)
    parser.add_argument("--pairs", type=int, default=200)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument(
        "--check-shards",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        help="shard counts whose merged tables must be byte-identical",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="fail when the sharded speedup drops below this factor "
        "(only enforced when at least 2 CPUs are available)",
    )
    parser.add_argument(
        "--hashseed-check",
        action="store_true",
        help="only run the PYTHONHASHSEED invariance gate (small T1 "
        "sweep twice under different hash seeds; outputs must be "
        "byte-identical)",
    )
    args = parser.parse_args()
    if args.hashseed_check:
        stats = run_hashseed_invariance()
        print(
            f"hashseed invariance  seeds={stats['hash_seeds']}  "
            f"rows={stats['rows']}"
        )
        for key in ("csv_identical", "table_identical", "checkpoint_identical"):
            print(f"  {key:21s}: {stats[key]}")
            assert stats[key], f"{key} failed across PYTHONHASHSEED values"
        print("  byte-identical under hash randomization")
        return
    stats = run_comparison(
        shape=tuple(args.shape),
        fault_counts=tuple(args.fault_counts),
        trials=args.trials,
        pairs=args.pairs,
        workers=args.workers,
        seed=args.seed,
        check_shards=tuple(args.check_shards),
    )
    print(stats["table"].render())
    print(
        f"\nsharded sweep  mesh={tuple(args.shape)}  "
        f"patterns={stats['patterns']}  pairs/pattern={args.pairs}"
    )
    print(f"  serial loop   : {stats['t_serial_s']:8.3f} s  (workers=1)")
    print(
        f"  sharded       : {stats['t_sharded_s']:8.3f} s  "
        f"(workers={stats['workers']})"
    )
    print(f"  speedup       : {stats['speedup']:8.2f}x")
    assert stats["identical"], (
        f"merged tables differ across shard counts {stats['check_shards']}"
    )
    print(f"  merged tables byte-identical for shards {stats['check_shards']}")
    cpus = os.cpu_count() or 1
    if cpus < 2:
        print(
            f"  speedup gate  : SKIPPED ({cpus} CPU available; "
            f"parallel speedup is not physical here)"
        )
        return
    assert stats["speedup"] >= args.min_speedup, (
        f"speedup {stats['speedup']:.2f}x below target {args.min_speedup}x"
    )
    print(f"  speedup target {args.min_speedup}x met")


if __name__ == "__main__":
    main()
