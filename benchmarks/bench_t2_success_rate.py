"""T2: rate of successful minimal routing per fault model.

The paper's second evaluation quantity.  Expected shape: MCC == oracle
(Theorem 2 exactness) >= RFB >= e-cube, with the gaps widening as the
fault rate grows.
"""

from benchmarks.conftest import emit
from repro.experiments.exp_success_rate import run_success_rate
from repro.experiments.workloads import random_fault_mask
from repro.routing.oracle import minimal_path_exists


def test_t2a_2d(benchmark):
    table = run_success_rate(
        (32, 32), [10, 26, 51, 102], pairs=150, trials=4, seed=2005
    )
    emit(table)
    for row in table.rows:
        # MCC equals the oracle up to the scoring convention: pairs with
        # an endpoint inside the (tiny) MCC region count as failures.
        assert row["mcc"] <= row["oracle"] + 1e-9
        assert row["oracle"] - row["mcc"] <= 0.02
        assert row["rfb"] <= row["mcc"] + 1e-9
    mask = random_fault_mask((32, 32), 51, rng=3)
    benchmark(minimal_path_exists, ~mask, (0, 0), (31, 31))


def test_t2b_3d(benchmark):
    table = run_success_rate(
        (16, 16, 16), [20, 82, 205, 410], pairs=150, trials=3, seed=2005
    )
    emit(table)
    for row in table.rows:
        assert row["mcc"] <= row["oracle"] + 1e-9
        assert row["oracle"] - row["mcc"] <= 0.02
        assert row["rfb"] <= row["mcc"] + 1e-9
    # RFB loses measurably at high fault rates.
    high = table.rows[-1]
    assert high["rfb"] < high["mcc"]
    mask = random_fault_mask((16, 16, 16), 205, rng=3)
    benchmark(minimal_path_exists, ~mask, (0, 0, 0), (15, 15, 15))
