"""T4: end-to-end routing on the discrete-event network.

Expected shape: delivery agrees with the oracle, every delivered path
is minimal, and per-query message cost is a few times the path length
(detection plus forwarding plus acknowledgements).
"""

from benchmarks.conftest import emit
from repro.distributed.pipeline import DistributedMCCPipeline
from repro.experiments.exp_des_routing import run_des_routing
from repro.experiments.workloads import random_fault_mask
from repro.mesh.topology import Mesh3D


def test_t4_des_routing(benchmark):
    table = run_des_routing(
        (8, 8, 8), [4, 12, 25], queries=20, trials=2, seed=2005
    )
    emit(table)
    for row in table.rows:
        assert row["agreement"] >= 0.95
        assert row["minimal_of_delivered"] >= 0.999

    mask = random_fault_mask((8, 8, 8), 12, rng=13)
    pipe = DistributedMCCPipeline(Mesh3D(8), mask).build()

    def route_once():
        pipe.route((0, 0, 0), (7, 7, 7))

    benchmark.pedantic(route_once, rounds=3, iterations=1)
