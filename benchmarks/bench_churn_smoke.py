"""CI gate: the T6 churn sweep is shard/worker invariant.

Runs a small fault-churn sweep (repro.experiments.exp_churn) serially,
then re-runs it across worker processes and several shard counts — the
merged tables must match byte-for-byte (rendered text and CSV), which
pins down that the online subsystem's whole event/routing history per
pattern is a pure function of the pattern's positional seed.

Run (exits non-zero on any mismatch)::

    PYTHONPATH=src python benchmarks/bench_churn_smoke.py \
        --shape 8 8 8 --fault-counts 6 20 --trials 4 --pairs 40 \
        --epochs 4 --workers 2 --check-shards 1 2 4
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.exp_churn import run_churn


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shape", type=int, nargs="+", default=[8, 8, 8])
    parser.add_argument("--fault-counts", type=int, nargs="+", default=[6, 20])
    parser.add_argument("--trials", type=int, default=4)
    parser.add_argument("--pairs", type=int, default=40)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--churn", type=int, default=2)
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--check-shards", type=int, nargs="+", default=[1, 2, 4])
    args = parser.parse_args()

    def run(workers: int, shards: int | None):
        return run_churn(
            tuple(args.shape),
            list(args.fault_counts),
            pairs=args.pairs,
            epochs=args.epochs,
            churn=args.churn,
            trials=args.trials,
            seed=args.seed,
            workers=workers,
            shards=shards,
        )

    serial = run(workers=1, shards=1)
    print(serial.render())
    for shards in args.check_shards:
        table = run(workers=args.workers, shards=shards)
        if table.render() != serial.render() or table.to_csv() != serial.to_csv():
            fail(
                f"churn sweep diverges at workers={args.workers}, "
                f"shards={shards}"
            )
    print(
        f"PASS: churn sweep byte-identical for workers={args.workers}, "
        f"shards in {args.check_shards}"
    )


if __name__ == "__main__":
    main()
