"""CI gate: checkpointed sweeps resume to byte-identical tables.

Simulates the failure mode checkpointing exists for: run a sweep with a
journal, "kill" it by truncating the journal after k completed pattern
records (every k, including 0 and all), resume, and require the merged
table to match the clean uninterrupted run byte-for-byte — CSV,
rendered text, and the durable JSONL file.  Also verifies that a resume
from a complete journal evaluates nothing (reduction straight from
disk) and that a corrupted partial final line is dropped and repaired.

Run (exits non-zero on any mismatch)::

    PYTHONPATH=src python benchmarks/bench_checkpoint_resume.py \
        --shape 6 6 --fault-counts 2 5 --trials 2 --pairs 10 \
        --check-shards 1 2 4
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

from repro.parallel.sharding import EXPERIMENTS, SweepSpec, plan_tasks, run_sweep


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def table_bytes(table, spec, path) -> bytes:
    table.save(path, fingerprint=spec.fingerprint())
    with open(path, "rb") as fh:
        return fh.read()


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--experiment", choices=sorted(EXPERIMENTS),
                        default="success_rate")
    parser.add_argument("--shape", type=int, nargs="+", default=[6, 6])
    parser.add_argument("--fault-counts", type=int, nargs="+", default=[2, 5])
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--pairs", type=int, default=10)
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--check-shards", type=int, nargs="+", default=[1, 2, 4])
    args = parser.parse_args(argv)

    spec = SweepSpec(
        experiment=args.experiment,
        shape=tuple(args.shape),
        fault_counts=tuple(args.fault_counts),
        trials=args.trials,
        seed=args.seed,
        params={"pairs": args.pairs},
    )
    n_tasks = len(plan_tasks(spec))
    clean = run_sweep(spec, workers=args.workers)

    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "sweep.jsonl")
        out = os.path.join(tmp, "table.jsonl")
        want_bytes = table_bytes(clean, spec, out)

        full = run_sweep(spec, workers=args.workers, checkpoint=journal)
        if table_bytes(full, spec, out) != want_bytes:
            fail("checkpointed run differs from clean run")
        with open(journal, "r", encoding="utf-8", newline="") as fh:
            lines = fh.read().splitlines(keepends=True)
        if len(lines) != n_tasks + 1:
            fail(f"journal holds {len(lines) - 1} records, expected {n_tasks}")

        checks = 0
        for k in range(n_tasks + 1):
            for shards in args.check_shards:
                with open(journal, "w", encoding="utf-8", newline="") as fh:
                    fh.writelines(lines[: 1 + k])
                resumed = run_sweep(
                    spec, workers=args.workers, shards=shards, checkpoint=journal
                )
                if table_bytes(resumed, spec, out) != want_bytes:
                    fail(f"resume after {k}/{n_tasks} records, "
                         f"shards={shards}: table differs")
                checks += 1

        # Kill mid-append: a partial final line must be dropped+repaired.
        with open(journal, "w", encoding="utf-8", newline="") as fh:
            fh.writelines(lines[:-1])
            fh.write(lines[-1][: max(1, len(lines[-1]) // 2)])
        resumed = run_sweep(spec, workers=args.workers, checkpoint=journal)
        if table_bytes(resumed, spec, out) != want_bytes:
            fail("resume from partial final line differs")

        # Kill mid-header-write: a fresh journal replaces the stub.
        with open(journal, "w", encoding="utf-8", newline="") as fh:
            fh.write(lines[0][: len(lines[0]) // 2])
        resumed = run_sweep(spec, workers=args.workers, checkpoint=journal)
        if table_bytes(resumed, spec, out) != want_bytes:
            fail("restart from partial header differs")

        # A complete journal reduces from disk without re-evaluating.
        with open(journal, "w", encoding="utf-8", newline="") as fh:
            fh.writelines(lines)
        before = os.path.getsize(journal)
        resumed = run_sweep(spec, workers=args.workers, checkpoint=journal)
        if table_bytes(resumed, spec, out) != want_bytes:
            fail("resume from complete journal differs")
        if os.path.getsize(journal) != before:
            fail("resume from complete journal appended records")

    print(f"PASS: {checks} truncation points x shard counts resumed "
          f"byte-identical ({args.experiment}, {n_tasks} patterns); "
          "partial-line repair, partial-header restart, and "
          "complete-journal fast path ok")


if __name__ == "__main__":
    main()
