"""Benchmark package: one module per table/figure in DESIGN.md."""
