"""K: micro-benchmarks of the core kernels (HPC-guide driven).

Tracks the vectorized hot paths: labelling fixed point, monotone-flood
DP, component extraction, wall construction, and the full per-class
model build the router amortizes per direction class.

Two front ends over the same kernel cases:

* ``pytest benchmarks/bench_kernels.py`` — pytest-benchmark tracking
  with its usual statistics;
* ``PYTHONPATH=src python benchmarks/bench_kernels.py`` — dependency-
  free best-of-N timing that writes a machine-readable
  ``BENCH_kernels.json`` to ``--out-dir`` (the same artifact shape as
  the other benches' ``BENCH_*.json`` summaries).
"""

import argparse
import json
import os
import time

import numpy as np

from repro.core.components import extract_mccs
from repro.core.labelling import label_grid
from repro.core.walls import build_walls
from repro.experiments.workloads import random_fault_mask
from repro.routing.oracle import monotone_flood, reverse_reachable


def test_kernel_labelling_2d_64(benchmark):
    mask = random_fault_mask((64, 64), 200, rng=1)
    result = benchmark(label_grid, mask)
    assert result.unsafe_mask.sum() >= 200


def test_kernel_labelling_3d_20(benchmark):
    mask = random_fault_mask((20, 20, 20), 400, rng=1)
    result = benchmark(label_grid, mask)
    assert result.unsafe_mask.sum() >= 400


def test_kernel_oracle_flood_3d(benchmark):
    mask = random_fault_mask((20, 20, 20), 400, rng=2)
    seeds = np.zeros((20, 20, 20), dtype=bool)
    seeds[0, 0, 0] = True
    out = benchmark(monotone_flood, ~mask, seeds)
    assert out[0, 0, 0]


def test_kernel_reverse_reachable_3d(benchmark):
    mask = random_fault_mask((20, 20, 20), 400, rng=3)
    out = benchmark(reverse_reachable, ~mask, (19, 19, 19))
    assert out[19, 19, 19]


def test_kernel_components_3d(benchmark):
    lab = label_grid(random_fault_mask((20, 20, 20), 400, rng=4))
    mccs = benchmark(extract_mccs, lab)
    assert len(mccs) > 0


def test_kernel_walls_3d(benchmark):
    lab = label_grid(random_fault_mask((12, 12, 12), 80, rng=5))
    mccs = extract_mccs(lab)
    walls = benchmark(build_walls, mccs)
    assert len(walls) == len(mccs) * 3


def build_cases() -> dict:
    """Name -> zero-arg callable, mirroring the pytest cases above."""
    mask_2d = random_fault_mask((64, 64), 200, rng=1)
    mask_3d = random_fault_mask((20, 20, 20), 400, rng=1)
    flood_mask = random_fault_mask((20, 20, 20), 400, rng=2)
    seeds = np.zeros((20, 20, 20), dtype=bool)
    seeds[0, 0, 0] = True
    rev_mask = random_fault_mask((20, 20, 20), 400, rng=3)
    comp_lab = label_grid(random_fault_mask((20, 20, 20), 400, rng=4))
    wall_mccs = extract_mccs(label_grid(random_fault_mask((12, 12, 12), 80, rng=5)))
    return {
        "labelling_2d_64": lambda: label_grid(mask_2d),
        "labelling_3d_20": lambda: label_grid(mask_3d),
        "oracle_flood_3d": lambda: monotone_flood(~flood_mask, seeds),
        "reverse_reachable_3d": lambda: reverse_reachable(~rev_mask, (19, 19, 19)),
        "components_3d": lambda: extract_mccs(comp_lab),
        "walls_3d": lambda: build_walls(wall_mccs),
    }


def time_case(fn, repeats: int) -> dict:
    """Best/median wall seconds over ``repeats`` single-shot runs."""
    fn()  # warm caches / JIT-free but first-touch allocations
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    samples.sort()
    return {
        "best_s": samples[0],
        "median_s": samples[len(samples) // 2],
        "repeats": repeats,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--out-dir",
        default="bench_artifacts",
        help="directory for the BENCH_kernels.json summary",
    )
    args = parser.parse_args()
    kernels = {}
    for name, fn in build_cases().items():
        kernels[name] = time_case(fn, args.repeats)
        print(
            f"{name:24s}  best {kernels[name]['best_s'] * 1e3:8.2f} ms   "
            f"median {kernels[name]['median_s'] * 1e3:8.2f} ms"
        )
    os.makedirs(args.out_dir, exist_ok=True)
    out = os.path.join(args.out_dir, "BENCH_kernels.json")
    with open(out, "w") as fh:
        json.dump({"kernels": kernels}, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"summary: {out}")


if __name__ == "__main__":
    main()
