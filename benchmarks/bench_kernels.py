"""K: micro-benchmarks of the core kernels (HPC-guide driven).

Tracks the vectorized hot paths: labelling fixed point, monotone-flood
DP, component extraction, wall construction, and the full per-class
model build the router amortizes per direction class.
"""

import numpy as np

from repro.core.components import extract_mccs
from repro.core.labelling import label_grid
from repro.core.walls import build_walls
from repro.experiments.workloads import random_fault_mask
from repro.routing.oracle import monotone_flood, reverse_reachable


def test_kernel_labelling_2d_64(benchmark):
    mask = random_fault_mask((64, 64), 200, rng=1)
    result = benchmark(label_grid, mask)
    assert result.unsafe_mask.sum() >= 200


def test_kernel_labelling_3d_20(benchmark):
    mask = random_fault_mask((20, 20, 20), 400, rng=1)
    result = benchmark(label_grid, mask)
    assert result.unsafe_mask.sum() >= 400


def test_kernel_oracle_flood_3d(benchmark):
    mask = random_fault_mask((20, 20, 20), 400, rng=2)
    seeds = np.zeros((20, 20, 20), dtype=bool)
    seeds[0, 0, 0] = True
    out = benchmark(monotone_flood, ~mask, seeds)
    assert out[0, 0, 0]


def test_kernel_reverse_reachable_3d(benchmark):
    mask = random_fault_mask((20, 20, 20), 400, rng=3)
    out = benchmark(reverse_reachable, ~mask, (19, 19, 19))
    assert out[19, 19, 19]


def test_kernel_components_3d(benchmark):
    lab = label_grid(random_fault_mask((20, 20, 20), 400, rng=4))
    mccs = benchmark(extract_mccs, lab)
    assert len(mccs) > 0


def test_kernel_walls_3d(benchmark):
    lab = label_grid(random_fault_mask((12, 12, 12), 80, rng=5))
    mccs = extract_mccs(lab)
    walls = benchmark(build_walls, mccs)
    assert len(walls) == len(mccs) * 3
