"""T3: message overhead of the distributed protocols.

Expected shape: cost scales with fault-region size (the point of
limited-global-information), with per-node cost far below flooding.
"""

from benchmarks.conftest import emit
from repro.distributed.pipeline import DistributedMCCPipeline
from repro.experiments.exp_protocol_overhead import run_protocol_overhead
from repro.experiments.workloads import random_fault_mask
from repro.mesh.topology import Mesh2D, Mesh3D


def test_t3_2d(benchmark):
    table = run_protocol_overhead((24, 24), [4, 12, 28], trials=4, seed=2005)
    emit(table)
    assert table.rows[0]["total"] <= table.rows[-1]["total"]

    def build_once():
        mask = random_fault_mask((24, 24), 12, rng=11)
        DistributedMCCPipeline(Mesh2D(24), mask).build()

    benchmark.pedantic(build_once, rounds=2, iterations=1)


def test_t3_3d(benchmark):
    table = run_protocol_overhead((9, 9, 9), [4, 12, 24], trials=3, seed=2005)
    emit(table)
    # Message cost stays a small multiple of the node count even at the
    # highest fault rate (no flooding).
    assert table.rows[-1]["per_node"] < 60

    def build_once():
        mask = random_fault_mask((9, 9, 9), 12, rng=11)
        DistributedMCCPipeline(Mesh3D(9), mask).build()

    benchmark.pedantic(build_once, rounds=2, iterations=1)
