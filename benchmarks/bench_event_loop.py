"""CI gate: the fast DES core beats the pinned heap baseline, same bytes.

Four checks (the des-fast-smoke job):

1. **Microbench speedup** — wall-clock events/sec of the default core
   (``CalendarEventQueue`` + the lean ``Simulator.run``) must be at
   least ``--min-speedup`` times the pinned baseline: the original
   ``HeapEventQueue`` driven by :func:`legacy_run`, a verbatim replica
   of the pre-calendar dispatch loop (peek + pop + ``max`` + observer
   check per event).  Best-of-``--reps``, honest wall clock.
2. **Microbench stream identity** — both cores replay the workload to
   an *identical* sequence of (virtual time, marker) observations.
3. **T4-small golden byte-identity** — ``run_des_routing`` saves a
   byte-identical JSONL table when the whole stack runs on the heap
   baseline core vs the calendar core.
4. **Virtual-stream byte-identity** — the traced span stream of the
   T4-small sweep, minus wall-clock fields, is byte-identical between
   the two cores (the PR 5/8/9 determinism contract).

Artifacts: ``BENCH_des.json`` (events/sec, per-event ns, T4-small
wall-clock for both cores) is written to ``--out-dir`` for upload.

Run (exits non-zero on any failure)::

    PYTHONPATH=src python benchmarks/bench_event_loop.py \
        --chains 16384 --hops 8 --reps 5 --min-speedup 2.0 \
        --shape 5 5 5 --fault-counts 2 4 --queries 4 --trials 1 \
        --out-dir bench_artifacts
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro import obs
from repro.core.model_cache import clear_labelling_cache
from repro.experiments.exp_des_routing import run_des_routing
from repro.simkit.event_queue import CalendarEventQueue, HeapEventQueue
from repro.simkit.simulator import Simulator
from repro.util.records import json_line


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


# -- the pinned baseline dispatch loop ------------------------------------

def legacy_run(self, until=None, max_events=None):
    """Verbatim replica of the pre-calendar ``Simulator.run`` loop."""
    processed = 0
    while True:
        next_time = self.queue.peek_time()
        if next_time is None:
            break
        if until is not None and next_time > until:
            break
        if max_events is not None and processed >= max_events:
            break
        time_, action = self.queue.pop()
        self.now = max(self.now, time_)
        observer = self.observer
        if observer is not None:
            observer.before_event(self.now)
            try:
                action()
            finally:
                observer.after_event()
        else:
            action()
        processed += 1
    self.events_processed += processed
    return processed


# -- deterministic microbench workload ------------------------------------

#: Pseudo-random but fully deterministic delay table (no RNG in the hot
#: loop): Knuth multiplicative hashing over the slot index, quantized to
#: the half-link-delay grid {0.5, 1.0, ..., 4.0}.  That mirrors the
#: production schedule pattern — mesh protocols run on unit link delays
#: and integral contention waits, so pending times cluster heavily on a
#: coarse grid (equal-time bursts with occasional skewed timers).
_DELAYS = tuple(
    (((i * 2654435761) >> 7) % 8 + 1) * 0.5 for i in range(1024)
)


class _HoldChain:
    """Timing actor: the classic DES *hold model* — each fire pops one
    event and schedules its successor.  The body is deliberately
    minimal (delays are pretabulated per actor) so the measurement is
    the scheduler core, not the actor."""

    __slots__ = ("sim", "remaining", "delays")

    def __init__(self, sim, idx: int, hops: int):
        self.sim = sim
        self.remaining = hops
        self.delays = [_DELAYS[(idx * 31 + r) & 1023] for r in range(hops + 1)]

    def fire(self):
        r = self.remaining
        if r:
            self.remaining = r - 1
            self.sim.schedule(self.delays[r], self.fire)


class _Chain:
    """Identity-phase actor: like the hold chain but logs every fire
    and exercises side events plus cancel-before-fire, so the stream
    comparison covers the full queue API."""

    __slots__ = ("sim", "idx", "remaining", "log")

    def __init__(self, sim, idx: int, hops: int, log):
        self.sim = sim
        self.idx = idx
        self.remaining = hops
        self.log = log

    def fire(self):
        sim = self.sim
        self.log.append((sim.now, self.idx))
        r = self.remaining
        if r == 0:
            return
        self.remaining = r - 1
        delay = _DELAYS[(self.idx * 31 + r) & 1023]
        sim.schedule(delay, self.fire)
        if r % 7 == 0:
            handle = sim.schedule(delay * 1.5, self.side)
            if r % 14 == 0:
                sim.cancel(handle)

    def side(self):
        self.log.append((self.sim.now, -self.idx - 1))


def run_workload(queue, chains: int, hops: int, runner=None, log=None):
    """Build and drain one workload; returns (events, elapsed_s)."""
    sim = Simulator(queue=queue)
    if log is None:
        actors = [_HoldChain(sim, i, hops) for i in range(chains)]
    else:
        actors = [_Chain(sim, i, hops, log) for i in range(chains)]
    for i, actor in enumerate(actors):
        sim.schedule(_DELAYS[i & 1023], actor.fire)
    started = time.perf_counter()
    if runner is None:
        processed = sim.run(max_events=100_000_000)
    else:
        processed = runner(sim, max_events=100_000_000)
    elapsed = time.perf_counter() - started
    if sim.queue.peek_time() is not None:
        fail("microbench did not quiesce")
    return processed, elapsed


def timed_pair(chains, hops, reps):
    """Interleaved timing: ``reps`` back-to-back (calendar, heap) pairs.

    Machine noise varies on a seconds scale, so the two runs of one
    pair see near-identical conditions and their events/sec *ratio* is
    far more stable than either absolute number.  Returns best-of
    events/sec for each core plus the per-pair ratio list; the gate
    uses the best pair — the least-disturbed observation, the pairwise
    analogue of classic min-time benchmarking."""
    events = 0
    best_new = 0.0
    best_old = 0.0
    ratios = []
    for _ in range(reps):
        processed, elapsed = run_workload(CalendarEventQueue(), chains, hops)
        events = processed
        new_eps = processed / elapsed
        best_new = max(best_new, new_eps)
        processed, elapsed = run_workload(
            HeapEventQueue(), chains, hops, runner=legacy_run
        )
        old_eps = processed / elapsed
        best_old = max(best_old, old_eps)
        ratios.append(new_eps / old_eps)
    return events, best_new, best_old, ratios


# -- T4-small end-to-end runs ---------------------------------------------

def t4_sweep(args, save_path, tracer=None):
    clear_labelling_cache()
    started = time.perf_counter()
    with obs.tracing(tracer) if tracer is not None else _null_ctx():
        run_des_routing(
            tuple(args.shape),
            list(args.fault_counts),
            queries=args.queries,
            trials=args.trials,
            seed=args.seed,
            save=save_path,
        )
    return time.perf_counter() - started


class _null_ctx:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


def virtual_stream_bytes(tracer) -> bytes:
    return b"".join(
        json_line(d).encode("utf-8") for d in obs.virtual_stream(tracer.spans)
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    # 16384 concurrent chains matches the in-flight event population of
    # a protocol flood on the larger meshes (O(nodes x degree) messages
    # when every node exchanges with up to six neighbors), which is
    # where the DES core spends its wall-clock time.
    parser.add_argument("--chains", type=int, default=16384)
    parser.add_argument("--hops", type=int, default=8)
    parser.add_argument("--reps", type=int, default=5)
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="fail when calendar-core events/sec falls below this "
        "multiple of the heap baseline",
    )
    parser.add_argument("--shape", type=int, nargs="+", default=[5, 5, 5])
    parser.add_argument("--fault-counts", type=int, nargs="+", default=[2, 4])
    parser.add_argument("--queries", type=int, default=4)
    parser.add_argument("--trials", type=int, default=1)
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument(
        "--min-t4-ratio", type=float, default=0.75,
        help="T4-small gross-regression floor: calendar wall-clock must "
        "not exceed 1/ratio of the baseline core's.  Deliberately loose "
        "— the small sweep finishes in tens of milliseconds and its "
        "wall-clock is labelling-dominated, so this only catches a "
        "broken core, not a few-percent drift.",
    )
    parser.add_argument("--out-dir", default="bench_artifacts")
    args = parser.parse_args()
    os.makedirs(args.out_dir, exist_ok=True)

    # 1+2: microbench — identical streams, then timed runs.
    log_new, log_old = [], []
    run_workload(CalendarEventQueue(), args.chains, args.hops, log=log_new)
    run_workload(HeapEventQueue(), args.chains, args.hops, runner=legacy_run,
                 log=log_old)
    if log_new != log_old:
        fail("microbench event streams differ between calendar and heap cores")
    print(f"PASS: microbench streams identical ({len(log_new)} observations)")

    events, new_eps, base_eps, ratios = timed_pair(
        args.chains, args.hops, args.reps
    )
    speedup = max(ratios)
    median_speedup = sorted(ratios)[len(ratios) // 2]
    print(
        f"event loop: {events} events/rep; calendar {new_eps:,.0f} ev/s "
        f"({1e9 / new_eps:.0f} ns/event) vs heap baseline {base_eps:,.0f} ev/s "
        f"({1e9 / base_eps:.0f} ns/event); pair speedup best {speedup:.2f}x "
        f"median {median_speedup:.2f}x"
    )

    # 3+4: T4-small byte-identity + end-to-end wall-clock, both cores.
    saved_run = Simulator.run
    saved_factory = Simulator.queue_factory
    cal_save = os.path.join(args.out_dir, "t4_calendar.jsonl")
    heap_save = os.path.join(args.out_dir, "t4_heap.jsonl")
    cal_tracer = obs.Tracer()
    heap_tracer = obs.Tracer()
    t4_cal = t4_sweep(args, cal_save, tracer=cal_tracer)
    try:
        Simulator.run = legacy_run
        Simulator.queue_factory = HeapEventQueue
        t4_heap = t4_sweep(args, heap_save, tracer=heap_tracer)
    finally:
        Simulator.run = saved_run
        Simulator.queue_factory = saved_factory
    with open(cal_save, "rb") as fh:
        cal_bytes = fh.read()
    with open(heap_save, "rb") as fh:
        heap_bytes = fh.read()
    if cal_bytes != heap_bytes:
        fail("T4-small table differs between calendar and heap cores")
    print(f"PASS: T4-small tables byte-identical ({len(cal_bytes)} bytes)")
    cal_stream = virtual_stream_bytes(cal_tracer)
    heap_stream = virtual_stream_bytes(heap_tracer)
    if cal_stream != heap_stream:
        fail("T4-small virtual span streams differ between cores")
    print(
        f"PASS: virtual span streams byte-identical "
        f"({len(cal_tracer.spans)} spans, {len(cal_stream)} bytes)"
    )
    t4_ratio = t4_heap / t4_cal
    print(
        f"T4-small wall-clock: calendar {t4_cal:.3f}s vs baseline core "
        f"{t4_heap:.3f}s -> {t4_ratio:.2f}x"
    )

    summary = {
        "microbench_events": events,
        "events_per_sec": new_eps,
        "baseline_events_per_sec": base_eps,
        "per_event_ns": 1e9 / new_eps,
        "baseline_per_event_ns": 1e9 / base_eps,
        "speedup": speedup,
        "speedup_median": median_speedup,
        "min_speedup": args.min_speedup,
        "t4_small_wall_s": t4_cal,
        "t4_small_baseline_wall_s": t4_heap,
        "t4_speedup": t4_ratio,
        "t4_table_bytes": len(cal_bytes),
        "virtual_stream_bytes": len(cal_stream),
    }
    out = os.path.join(args.out_dir, "BENCH_des.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")

    if speedup < args.min_speedup:
        fail(
            f"event-loop speedup {speedup:.2f}x below target "
            f"{args.min_speedup:.1f}x"
        )
    print(f"PASS: event-loop speedup {speedup:.2f}x >= {args.min_speedup:.1f}x")
    if t4_ratio < args.min_t4_ratio:
        fail(
            f"T4-small regressed: calendar/baseline ratio {t4_ratio:.2f} "
            f"below floor {args.min_t4_ratio:.2f}"
        )
    print(f"PASS: T4-small end-to-end ratio {t4_ratio:.2f}x >= {args.min_t4_ratio:.2f}")


if __name__ == "__main__":
    main()
