"""CI gate: the T7 contended-link load sweep is invariant and opt-in.

Three checks:

1. **Shard/worker invariance** — the merged T7 table is byte-identical
   for workers 1 vs 2 and every shard count in ``--check-shards``
   (records are pure functions of their positional seeds; the reducer
   merges in global task order).
2. **Checkpoint resume byte-identity** — a T7 journal truncated after
   any prefix of completed pattern records resumes to the same bytes
   as an uninterrupted run.
3. **Uncontended golden parity** — with the default
   ``link_capacity=None`` the contended-link machinery must be inert:
   fixed-seed T3 and T4 runs reproduce the tables captured before the
   contention layer existed, byte for byte.

Run (exits non-zero on any failure)::

    PYTHONPATH=src python benchmarks/bench_load_sweep.py \
        --shape 6 6 --fault-counts 2 4 --trials 2 \
        --rates 0.3 1.0 --duration 12 --check-shards 1 2 4
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

from repro.experiments.exp_des_routing import run_des_routing
from repro.experiments.exp_load import run_load_sweep
from repro.experiments.exp_protocol_overhead import run_protocol_overhead

#: Pre-contention goldens (fixed args, fixed seeds).  Any drift means
#: the ``link_capacity=None`` path is no longer byte-identical.
GOLDEN_T3 = """\
faults,label,edge,ident,shape,wall,total,per_node
2,0.0,14.5,9.5,10.0,5.0,39.0,1.0833333333333333
4,0.0,29.0,20.5,27.0,8.0,84.5,2.3472222222222223
"""

GOLDEN_T4 = """\
faults,queries,delivered,oracle,agreement,minimal_of_delivered,stuck,msgs_per_query
2,16,1.0,1.0,1.0,1.0,0,52.4375
4,15,1.0,1.0,1.0,1.0,0,37.6
"""


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def csv_lf(table) -> str:
    return table.to_csv().replace("\r\n", "\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shape", type=int, nargs="+", default=[6, 6])
    parser.add_argument("--fault-counts", type=int, nargs="+", default=[2, 4])
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--rates", type=float, nargs="+", default=[0.3, 1.0])
    parser.add_argument("--duration", type=float, default=12.0)
    parser.add_argument("--capacity", type=int, default=1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--check-shards", type=int, nargs="+", default=[1, 2, 4])
    args = parser.parse_args()
    kw = dict(
        shape=tuple(args.shape),
        fault_counts=list(args.fault_counts),
        trials=args.trials,
        rates=list(args.rates),
        duration=args.duration,
        capacity=args.capacity,
        seed=args.seed,
    )

    # 1. Shard/worker invariance.
    with tempfile.TemporaryDirectory() as tmp:
        base_path = os.path.join(tmp, "base.jsonl")
        base = run_load_sweep(**kw, save=base_path)
        with open(base_path, "rb") as fh:
            base_bytes = fh.read()
        for shards in args.check_shards:
            path = os.path.join(tmp, f"s{shards}.jsonl")
            run_load_sweep(**kw, workers=2, shards=shards, save=path)
            with open(path, "rb") as fh:
                got = fh.read()
            if got != base_bytes:
                fail(f"t7 table differs at workers=2 shards={shards}")
        print(
            f"PASS: t7 byte-identical across workers 1/2 and shards "
            f"{args.check_shards} ({len(base_bytes)} bytes)"
        )

        # 2. Checkpoint resume byte-identity: truncate the journal after
        # every completed-record prefix and resume each time.
        clean_ck = os.path.join(tmp, "clean.jsonl")
        run_load_sweep(**kw, checkpoint=clean_ck)
        with open(clean_ck, encoding="utf-8") as fh:
            journal_lines = fh.readlines()
        n_records = len(journal_lines) - 1  # header line first
        for keep in range(n_records):
            ck = os.path.join(tmp, f"resume{keep}.jsonl")
            with open(ck, "w", encoding="utf-8", newline="") as fh:
                fh.writelines(journal_lines[: 1 + keep])
            resumed = run_load_sweep(**kw, checkpoint=ck, workers=2)
            if csv_lf(resumed) != csv_lf(base):
                fail(f"t7 resume after {keep}/{n_records} records diverged")
        print(
            f"PASS: t7 checkpoint resume byte-identical for every prefix "
            f"(0..{n_records - 1} of {n_records} records)"
        )
    print(base.render())

    # 3. Uncontended golden parity: T3/T4 with default links reproduce
    # the pre-contention tables exactly (fixed args regardless of CLI).
    t3 = run_protocol_overhead((6, 6), [2, 4], trials=2, seed=6)
    if csv_lf(t3) != GOLDEN_T3:
        fail("T3 table drifted from the pre-contention golden")
    print("PASS: T3 uncontended golden parity")
    t4 = run_des_routing((5, 5, 5), [2, 4], queries=8, trials=2, seed=2005)
    if csv_lf(t4) != GOLDEN_T4:
        fail("T4 table drifted from the pre-contention golden")
    print("PASS: T4 uncontended golden parity")


if __name__ == "__main__":
    main()
