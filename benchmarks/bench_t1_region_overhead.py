"""T1: non-faulty nodes captured inside fault regions (MCC vs RFB).

Regenerates the paper's first evaluation quantity: "the number of
non-faulty nodes included in MCCs in 3-D meshes … compared with the
best existing known result" (the rectangular faulty blocks).
Expected shape: MCC << RFB, gap widening with fault rate and dimension.
"""

from benchmarks.conftest import emit
from repro.experiments.exp_region_overhead import (
    region_overhead_once,
    run_region_overhead,
)
from repro.experiments.workloads import random_fault_mask


def test_t1a_2d(benchmark):
    table = run_region_overhead(
        (32, 32), [10, 26, 51, 102, 154], trials=25, seed=2005
    )
    emit(table)
    for row in table.rows:
        assert row["mcc_nonfaulty"] <= row["rfb_nonfaulty"] + 1e-9
    # The timed kernel: one full T1 data point at 5% faults.
    mask = random_fault_mask((32, 32), 51, rng=7)
    benchmark(region_overhead_once, mask)


def test_t1b_3d(benchmark):
    table = run_region_overhead(
        (16, 16, 16), [20, 82, 205, 410], trials=15, seed=2005
    )
    emit(table)
    for row in table.rows:
        assert row["mcc_nonfaulty"] <= row["rfb_nonfaulty"] + 1e-9
    # Headline check: at 10% faults in 3-D the RFB overhead explodes.
    high = table.rows[-1]
    assert high["rfb_over_mcc"] > 2.0
    mask = random_fault_mask((16, 16, 16), 205, rng=7)
    benchmark(region_overhead_once, mask)


def test_t1_clustered_ablation(benchmark):
    table = run_region_overhead(
        (16, 16, 16), [40, 120], trials=10, seed=2005, clustered=True
    )
    emit(table)
    mask = random_fault_mask((16, 16, 16), 120, rng=9)
    benchmark(region_overhead_once, mask)
