"""CI gate: the concurrent, churn-aware DES core.

Four checks over the concurrent simulation engine:

1. **Session parity** — a query batch submitted as interleaved sessions
   and resolved by one ``drain()`` must match blocking per-query
   ``route()`` calls element-wise: statuses, paths, and per-query
   message attribution (the payload-tag accounting equals the retired
   before/after stats delta).
2. **Batched T4 throughput** — the batched evaluator (submit-all, one
   ``run_to_quiescence``, one cached-service ``feasible_batch``) must
   not regress against the retired serial loop (blocking ``route`` per
   query, stats-delta accounting, a fresh oracle ``RoutingService`` per
   pattern), reproduced inline here.  In virtual time both process the
   *same* event stream, so the honest expectation is parity, not a
   multiple — the gate defaults to ``--min-t4-ratio 0.9`` and the
   measured ratio is printed.
3. **Churn re-stabilization speedup** — ``apply_event``'s incremental
   re-stabilization (warm-started labelling scoped to the dirty cone,
   identification restarted only around affected regions) must beat
   the naive alternative of rebuilding the pipeline from scratch after
   every fault event by ``--min-churn-speedup`` (default 1.5x; the
   scoped path measures ~3-5x on a 10^3 mesh).  Exactness is asserted
   on every event: incremental labels == from-scratch ``label_grid``.
4. **Churn-DES shard invariance** — a small ``churn_des`` sweep (the
   ``t6 --des`` table) must be byte-identical across worker/shard
   layouts.  (Checkpoint resume for ``churn_des`` is covered by
   ``bench_checkpoint_resume.py --experiment churn_des``.)

Run (exits non-zero on any failure)::

    PYTHONPATH=src python benchmarks/bench_des_concurrent.py \
        --shape 7 7 7 --faults 12 --queries 40 \
        --churn-shape 10 10 10 --churn-faults 30 --events 6 \
        --min-churn-speedup 1.5
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core.labelling import SAFE, label_grid
from repro.distributed.pipeline import DistributedMCCPipeline
from repro.experiments.exp_churn import run_churn
from repro.experiments.workloads import random_fault_mask
from repro.mesh.topology import Mesh
from repro.routing.batch import RoutingService


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def sample_pairs(rng, lab, count):
    cells = np.argwhere(lab == SAFE)
    pairs = []
    tries = 0
    while len(pairs) < count and tries < 100 * count:
        tries += 1
        i, j = rng.integers(0, len(cells), size=2)
        s = tuple(int(v) for v in np.minimum(cells[i], cells[j]))
        d = tuple(int(v) for v in np.maximum(cells[i], cells[j]))
        if lab[s] == SAFE and lab[d] == SAFE and s != d:
            pairs.append((s, d))
    return pairs


def serial_t4(shape, mask, pairs):
    """The retired T4 pattern evaluator: blocking route per query."""
    pipe = DistributedMCCPipeline(Mesh(shape), mask).build()
    records = []
    for s, d in pairs:
        before = pipe.net.stats.total_messages
        result = pipe.route(s, d)
        records.append(
            (result["status"], tuple(map(tuple, result["path"])),
             pipe.net.stats.total_messages - before)
        )
    wants = RoutingService(mask, mode="oracle").feasible_batch(pairs)
    return records, wants


def concurrent_t4(shape, mask, pairs):
    """The batched evaluator: one simulator run, one scoring call."""
    pipe = DistributedMCCPipeline(Mesh(shape), mask).build()
    for s, d in pairs:
        pipe.submit(s, d)
    results = pipe.drain()
    records = [
        (r["status"], tuple(map(tuple, r["path"])), r["msgs"])
        for r in results
    ]
    wants = RoutingService(mask, mode="oracle").feasible_batch(pairs)
    return records, wants


def check_parity_and_t4(args) -> None:
    rng = np.random.default_rng(args.seed)
    shape = tuple(args.shape)
    t_serial = t_batch = 0.0
    for _trial in range(args.patterns):
        mask = random_fault_mask(shape, args.faults, rng=rng)
        lab = label_grid(mask).status
        pairs = sample_pairs(rng, lab, args.queries)
        if not pairs:
            continue
        t0 = time.perf_counter()
        serial, wants_s = serial_t4(shape, mask, pairs)
        t_serial += time.perf_counter() - t0
        t0 = time.perf_counter()
        batch, wants_b = concurrent_t4(shape, mask, pairs)
        t_batch += time.perf_counter() - t0
        if serial != batch:
            for a, b in zip(serial, batch, strict=True):
                if a != b:
                    fail(f"session parity broken: serial {a} vs batch {b}")
        if not np.array_equal(wants_s, wants_b):
            fail("oracle verdicts differ between scoring paths")
    ratio = t_serial / t_batch if t_batch else 1.0
    print(
        f"T4: serial loop {t_serial * 1000:.1f}ms, concurrent batch "
        f"{t_batch * 1000:.1f}ms -> ratio {ratio:.2f}x "
        f"(parity element-wise exact)"
    )
    if ratio < args.min_t4_ratio:
        fail(
            f"batched T4 regressed: {ratio:.2f}x < {args.min_t4_ratio:.2f}x"
        )


def check_churn_speedup(args) -> None:
    rng = np.random.default_rng(args.seed + 1)
    shape = tuple(args.churn_shape)
    mask = random_fault_mask(shape, args.churn_faults, rng=rng)
    pipe = DistributedMCCPipeline(Mesh(shape), mask.copy()).build()
    t_incremental = t_rebuild = 0.0
    for epoch in range(args.events):
        current = pipe.fault_mask
        pool = np.argwhere(~current if epoch % 2 == 0 else current)
        k = min(args.churn, len(pool))
        if k == 0:
            continue
        picks = rng.choice(len(pool), size=k, replace=False)
        cells = [tuple(int(v) for v in pool[i]) for i in picks]
        kind = "inject" if epoch % 2 == 0 else "repair"
        t0 = time.perf_counter()
        pipe.apply_event(kind, cells)
        t_incremental += time.perf_counter() - t0
        want = label_grid(pipe.fault_mask).status
        if not np.array_equal(pipe.labels_grid(), want):
            fail(f"incremental labels diverged after {kind} {cells}")
        # The naive alternative: a full pipeline rebuild on the new mask.
        t0 = time.perf_counter()
        DistributedMCCPipeline(Mesh(shape), pipe.fault_mask.copy()).build()
        t_rebuild += time.perf_counter() - t0
    speedup = t_rebuild / t_incremental if t_incremental else float("inf")
    print(
        f"churn: incremental re-stabilization "
        f"{t_incremental / args.events * 1000:.1f}ms/event vs rebuild "
        f"{t_rebuild / args.events * 1000:.1f}ms/event -> {speedup:.2f}x "
        f"(labels byte-identical per event)"
    )
    if speedup < args.min_churn_speedup:
        fail(
            f"re-stabilization speedup {speedup:.2f}x below the "
            f"{args.min_churn_speedup:.2f}x gate"
        )


def check_des_sweep_invariance(args) -> None:
    def run(workers, shards):
        return run_churn(
            tuple(args.sweep_shape),
            list(args.sweep_fault_counts),
            pairs=args.sweep_pairs,
            epochs=args.sweep_epochs,
            churn=args.churn,
            trials=args.sweep_trials,
            seed=args.seed,
            workers=workers,
            shards=shards,
            des=True,
        )

    base = run(1, 1)
    print(base.render())
    for workers, shards in ((args.workers, 1), (args.workers, 2)):
        other = run(workers, shards)
        if other.to_csv() != base.to_csv():
            fail(
                f"churn-DES table varies with workers={workers}, "
                f"shards={shards}"
            )
    print("churn-DES sweep byte-identical across worker/shard layouts")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shape", type=int, nargs="+", default=[7, 7, 7])
    parser.add_argument("--faults", type=int, default=12)
    parser.add_argument("--queries", type=int, default=40)
    parser.add_argument("--patterns", type=int, default=3)
    parser.add_argument("--churn-shape", type=int, nargs="+",
                        default=[10, 10, 10])
    parser.add_argument("--churn-faults", type=int, default=30)
    parser.add_argument("--events", type=int, default=6)
    parser.add_argument("--churn", type=int, default=2)
    parser.add_argument("--sweep-shape", type=int, nargs="+", default=[6, 6, 6])
    parser.add_argument("--sweep-fault-counts", type=int, nargs="+",
                        default=[3, 8])
    parser.add_argument("--sweep-pairs", type=int, default=8)
    parser.add_argument("--sweep-epochs", type=int, default=3)
    parser.add_argument("--sweep-trials", type=int, default=2)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument("--min-t4-ratio", type=float, default=0.9)
    parser.add_argument("--min-churn-speedup", type=float, default=1.5)
    args = parser.parse_args(argv)

    check_parity_and_t4(args)
    check_churn_speedup(args)
    check_des_sweep_invariance(args)
    print("OK")


if __name__ == "__main__":
    main()
