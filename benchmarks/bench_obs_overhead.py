"""CI gate: telemetry is free when off and invisible when on.

Three checks on the T4-small sweep (the obs-smoke job):

1. **Disabled-overhead gate** — with no tracer installed every
   instrumented seam costs one module-global read.  The gate measures
   the per-call cost of the no-op path directly (a tight loop of
   ``obs.span``/``obs.instant`` calls with tracing off), counts the
   spans a traced run of the same sweep actually emits, and requires
   ``span_count * percall <= budget * untraced_runtime`` (default
   budget 5%).  Measuring the product instead of differencing two
   noisy end-to-end timings makes the gate stable on shared runners.
2. **Table byte-identity** — the JSONL table saved by a traced run is
   byte-for-byte the one saved by an untraced run of the same seed
   (telemetry must never perturb results).  Caches are cleared before
   each run so both start equally cold.
3. **Export validity** — the traced run's Perfetto JSON parses, every
   event carries the trace-event schema fields, and the spans cover at
   least four layers of the stack (routing / kernel / des /
   distributed / harness).

Artifacts: the Perfetto trace and a ``BENCH_obs.json`` summary are
written to ``--out-dir`` for upload.

Run (exits non-zero on any failure)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        --shape 5 5 5 --fault-counts 2 4 --queries 4 --trials 1 \
        --max-overhead 0.05 --out-dir bench_artifacts
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro import obs
from repro.core.model_cache import clear_labelling_cache
from repro.experiments.exp_des_routing import run_des_routing


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def time_noop_path(calls: int) -> float:
    """Per-call seconds of the disabled ``obs.span`` + ``obs.instant`` pair."""
    assert not obs.enabled()
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        for _ in range(calls):
            with obs.span("x", cat="bench"):
                pass
            obs.instant("y", cat="bench")
        best = min(best, time.perf_counter() - started)
    return best / (2 * calls)  # two instrumented sites per iteration


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shape", type=int, nargs="+", default=[5, 5, 5])
    parser.add_argument("--fault-counts", type=int, nargs="+", default=[2, 4])
    parser.add_argument("--queries", type=int, default=4)
    parser.add_argument("--trials", type=int, default=1)
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument(
        "--max-overhead", type=float, default=0.05,
        help="disabled-tracing budget as a fraction of untraced runtime",
    )
    parser.add_argument(
        "--noop-calls", type=int, default=200_000,
        help="loop length for timing the no-op fast path",
    )
    parser.add_argument("--out-dir", default="bench_artifacts")
    args = parser.parse_args()
    shape = tuple(args.shape)
    os.makedirs(args.out_dir, exist_ok=True)
    trace_path = os.path.join(args.out_dir, "t4_small.perfetto.json")

    def sweep(save=None, trace=None):
        clear_labelling_cache()
        return run_des_routing(
            shape,
            list(args.fault_counts),
            queries=args.queries,
            trials=args.trials,
            seed=args.seed,
            save=save,
            trace=trace,
        )

    # Untraced reference run: runtime + golden table bytes.
    untraced_save = os.path.join(args.out_dir, "t4_untraced.jsonl")
    started = time.perf_counter()
    table = sweep(save=untraced_save)
    untraced_runtime = time.perf_counter() - started
    print(table.render())

    # Traced run: golden-table comparison + the exported artifact.
    traced_save = os.path.join(args.out_dir, "t4_traced.jsonl")
    sweep(save=traced_save, trace=trace_path)
    with open(untraced_save, "rb") as fh:
        golden = fh.read()
    with open(traced_save, "rb") as fh:
        traced_bytes = fh.read()
    if traced_bytes != golden:
        fail("traced run's saved table differs from the untraced golden")
    print(f"PASS: traced table byte-identical to untraced ({len(golden)} bytes)")

    with open(trace_path, encoding="utf-8") as fh:
        events = json.load(fh)["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    for e in complete:
        missing = {"name", "cat", "pid", "tid", "ts", "dur"} - set(e)
        if missing:
            fail(f"trace event {e.get('name')!r} missing fields {missing}")
    cats = {e["cat"] for e in complete}
    layers = cats & {"routing", "kernel", "des", "distributed", "harness"}
    if len(layers) < 4:
        fail(f"trace covers layers {sorted(layers)}; need >= 4")
    print(
        f"PASS: {len(events)} trace events across layers {sorted(layers)} "
        f"({trace_path})"
    )

    # Disabled-overhead gate: cost of every seam if the traced run had
    # been executed with tracing off.
    span_count = len(complete) + sum(e["ph"] == "i" for e in events)
    percall = time_noop_path(args.noop_calls)
    disabled_cost = span_count * percall
    budget = args.max_overhead * untraced_runtime
    print(
        f"no-op path: {percall * 1e9:.0f} ns/call; {span_count} seams "
        f"-> {disabled_cost * 1e6:.1f} us vs budget {budget * 1e6:.0f} us "
        f"({args.max_overhead:.0%} of {untraced_runtime:.3f}s untraced)"
    )
    if disabled_cost > budget:
        fail(
            f"disabled tracing would cost {disabled_cost / untraced_runtime:.2%} "
            f"of the untraced runtime (budget {args.max_overhead:.0%})"
        )
    print("PASS: disabled-tracing overhead within budget")

    summary = {
        "untraced_runtime_s": untraced_runtime,
        "noop_percall_ns": percall * 1e9,
        "span_count": span_count,
        "disabled_overhead_fraction": disabled_cost / untraced_runtime,
        "max_overhead": args.max_overhead,
        "trace_events": len(events),
        "layers": sorted(layers),
        "table_bytes": len(golden),
    }
    out = os.path.join(args.out_dir, "BENCH_obs.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
