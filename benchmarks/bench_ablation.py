"""A1–A4: ablations from DESIGN.md's experiment index.

The multi-pattern ablations (A1, A4) run through
:mod:`repro.parallel.sharding` like the paper tables — ``workers=`` and
``shards=`` fan their fault patterns across processes with results
byte-identical to the retired inline trial loops (also pinned in
``tests/test_serial_parity.py``).
"""

import numpy as np

from benchmarks.conftest import emit
from repro.baselines.rfb import rfb_unsafe
from repro.core.labelling import label_grid
from repro.experiments.exp_ablation import run_mesh4d_extension, run_rfb_variants
from repro.experiments.exp_region_overhead import run_region_overhead
from repro.experiments.workloads import random_fault_mask
from repro.mesh.coords import manhattan
from repro.routing.engine import AdaptiveRouter
from repro.routing.policies import make_policy
from repro.util.records import ResultTable


def test_a1_rfb_variants(benchmark):
    """Block expansion vs local-closure-only RFB regions."""
    table = run_rfb_variants((12, 12, 12), [10, 40, 90], trials=10, seed=11)
    emit(table)
    sharded = run_rfb_variants(
        (12, 12, 12), [10, 40, 90], trials=10, seed=11, workers=2, shards=4
    )
    assert sharded.to_csv() == table.to_csv()
    for row in table.rows:
        assert row["local_nonfaulty"] <= row["block_nonfaulty"]
    mask = random_fault_mask((12, 12, 12), 40, rng=5)
    benchmark(rfb_unsafe, mask)


def test_a2_policies(benchmark):
    """Adaptive selector policies: all minimal, different path shapes."""
    table = ResultTable("A2 selector policies — 10^3 mesh, 5% faults")
    rng = np.random.default_rng(23)
    mask = random_fault_mask((10, 10, 10), 50, rng=rng)
    lab = label_grid(mask)
    pairs = []
    safe = np.argwhere(lab.safe_mask)
    while len(pairs) < 40:
        i, j = rng.integers(0, safe.shape[0], 2)
        s = tuple(int(c) for c in np.minimum(safe[i], safe[j]))
        d = tuple(int(c) for c in np.maximum(safe[i], safe[j]))
        if lab.safe_mask[s] and lab.safe_mask[d] and s != d:
            pairs.append((s, d))
    for name in ("fixed", "diagonal", "random"):
        router = AdaptiveRouter(mask, mode="mcc", policy=make_policy(name, 3))
        delivered = minimal = 0
        distinct_first_hops = set()
        for s, d in pairs:
            result = router.route(s, d)
            if result.delivered:
                delivered += 1
                minimal += result.hops == manhattan(s, d)
                if len(result.path) > 1:
                    distinct_first_hops.add((s, result.path[1]))
        table.add(
            policy=name,
            delivered=delivered,
            minimal=minimal,
            distinct_first_hops=len(distinct_first_hops),
        )
    emit(table)
    rows = {r["policy"]: r for r in table.rows}
    assert rows["fixed"]["delivered"] == rows["random"]["delivered"]
    for row in table.rows:
        assert row["minimal"] == row["delivered"]
    router = AdaptiveRouter(mask, mode="mcc")
    benchmark(router.route, (0, 0, 0), (9, 9, 9))


def test_a3_clustering(benchmark):
    """Clustered faults: fewer, larger regions; overhead gap persists."""
    uniform = run_region_overhead((12, 12, 12), [60], trials=10, seed=31)
    clustered = run_region_overhead(
        (12, 12, 12), [60], trials=10, seed=31, clustered=True
    )
    table = ResultTable("A3 fault clustering — 12^3 mesh, 60 faults")
    table.add(workload="uniform", **{k: v for k, v in uniform.rows[0].items()})
    table.add(workload="clustered", **{k: v for k, v in clustered.rows[0].items()})
    emit(table)
    for row in table.rows:
        assert row["mcc_nonfaulty"] <= row["rfb_nonfaulty"] + 1e-9
    mask = random_fault_mask((12, 12, 12), 60, rng=33)
    benchmark(label_grid, mask)


def test_a4_4d_extension(benchmark):
    """The paper's future work: higher-dimension meshes (4-D labelling)."""
    table = run_mesh4d_extension((7, 7, 7, 7), [24, 120], trials=5, seed=41)
    emit(table)
    sharded = run_mesh4d_extension(
        (7, 7, 7, 7), [24, 120], trials=5, seed=41, workers=2, shards=2
    )
    assert sharded.to_csv() == table.to_csv()
    # 4-D labelling needs 4 blocked neighbors: fills are rarer than 3-D.
    assert table.rows[0]["mcc_nonfaulty"] < 5
    mask = random_fault_mask((7, 7, 7, 7), 120, rng=43)
    benchmark(label_grid, mask)
